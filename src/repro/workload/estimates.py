"""User runtime-estimate models.

The paper evaluates each admission control under two endpoints —
perfectly **accurate** estimates and the **actual** (inaccurate, mostly
over-estimated) estimates recorded in the trace — and, in §5.5, a sweep
of the *percentage of inaccuracy* between them:

* 0 % inaccuracy  → ``estimate = runtime`` (accurate);
* 100 % inaccuracy → ``estimate = trace estimate``;
* p % → linear interpolation (:func:`interpolate_inaccuracy`).

When the genuine trace is unavailable the *trace estimate* itself comes
from :class:`ModalOverestimateModel`, which reproduces the two robust
findings about user estimates on the SDSC SP2 (Mu'alem & Feitelson
2001; Tsafrir, Etsion & Feitelson 2005):

* users pick estimates from a small set of **round/canonical values**
  (15 min, 1 h, 2 h, 4 h, 18 h, ...), with generous headroom — the
  bulk of jobs is heavily over-estimated;
* a minority of jobs **reaches or exceeds** its estimate (jobs killed
  at the limit, grace periods) — the overrun population whose Eq. 1
  share collapses to zero and which LibraRisk's risk metric is built
  to catch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Canonical estimate values users actually pick, in seconds
#: (5/10/15/20/30 min, 1/2/3/4/6/8/12/18/24/36/48/72 h).
CANONICAL_ESTIMATES: tuple[float, ...] = (
    300.0, 600.0, 900.0, 1200.0, 1800.0,
    3600.0, 7200.0, 10800.0, 14400.0, 21600.0, 28800.0,
    43200.0, 64800.0, 86400.0, 129600.0, 172800.0, 259200.0,
)


@dataclass(frozen=True)
class ModalOverestimateModel:
    """Tsafrir-style modal user-estimate generator.

    For each job one of three user behaviours is drawn:

    * **over** (probability ``1 − p_exact − p_overrun``): the user pads
      the runtime by a lognormal headroom factor ≥ 1 and rounds *up* to
      the next canonical value — the dominant, over-estimating case;
    * **exact** (``p_exact``): the estimate equals the runtime (the
      user nailed it, or the job was killed exactly at its limit);
    * **overrun** (``p_overrun``): the actual runtime *exceeds* the
      estimate by up to ``max_overrun_factor`` (grace periods, lax
      enforcement) — the estimate is the runtime divided by a uniform
      factor in ``(1, max_overrun_factor]``.
    """

    p_exact: float = 0.10
    p_overrun: float = 0.10
    #: Lognormal parameters of the headroom factor (≥ 1 after shift).
    headroom_mu: float = 0.8
    headroom_sigma: float = 0.9
    #: Upper bound on runtime/estimate for overrun jobs.
    max_overrun_factor: float = 1.5
    #: Round over-estimates up to canonical values.
    use_canonical: bool = True
    canonical: tuple[float, ...] = CANONICAL_ESTIMATES

    def __post_init__(self) -> None:
        if not (0.0 <= self.p_exact <= 1.0 and 0.0 <= self.p_overrun <= 1.0):
            raise ValueError("probabilities must be in [0, 1]")
        if self.p_exact + self.p_overrun > 1.0:
            raise ValueError("p_exact + p_overrun must be <= 1")
        if self.max_overrun_factor <= 1.0:
            raise ValueError("max_overrun_factor must be > 1")
        if self.use_canonical and not self.canonical:
            raise ValueError("canonical value list must not be empty")

    def draw(self, runtimes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vector of estimates for ``runtimes`` (element-wise, > 0)."""
        runtimes = np.asarray(runtimes, dtype=float)
        n = runtimes.shape[0]
        u = rng.random(n)
        exact_mask = u < self.p_exact
        overrun_mask = (u >= self.p_exact) & (u < self.p_exact + self.p_overrun)
        over_mask = ~(exact_mask | overrun_mask)

        estimates = runtimes.copy()

        # Over-estimators: pad then round up to a canonical value.
        headroom = 1.0 + rng.lognormal(self.headroom_mu, self.headroom_sigma, size=n)
        padded = runtimes * headroom
        if self.use_canonical:
            grid = np.asarray(sorted(self.canonical), dtype=float)
            idx = np.searchsorted(grid, padded, side="left")
            rounded = np.where(idx < len(grid), grid[np.minimum(idx, len(grid) - 1)], padded)
            # Values beyond the grid keep their padded value.
            rounded = np.where(padded > grid[-1], padded, rounded)
            padded = np.maximum(rounded, runtimes)  # never below the runtime
        estimates = np.where(over_mask, padded, estimates)

        # Overrunners: the job outlives its estimate.
        overrun_factor = rng.uniform(1.0 + 1e-9, self.max_overrun_factor, size=n)
        estimates = np.where(overrun_mask, runtimes / overrun_factor, estimates)

        return np.maximum(estimates, 1.0)


def accurate_estimates(runtimes: np.ndarray) -> np.ndarray:
    """The paper's 'accurate runtime estimates' endpoint: estimate = runtime."""
    return np.asarray(runtimes, dtype=float).copy()


def interpolate_inaccuracy(
    runtimes: np.ndarray,
    trace_estimates: np.ndarray,
    inaccuracy_pct: float,
) -> np.ndarray:
    """§5.5 inaccuracy sweep: blend accurate and trace estimates.

    ``estimate(p) = runtime + (p/100) · (trace_estimate − runtime)``

    so 0 % reproduces the accurate endpoint and 100 % the trace
    endpoint, for both over- and under-estimated jobs.
    """
    if not 0.0 <= inaccuracy_pct <= 100.0:
        raise ValueError(f"inaccuracy_pct must be in [0, 100], got {inaccuracy_pct}")
    runtimes = np.asarray(runtimes, dtype=float)
    trace_estimates = np.asarray(trace_estimates, dtype=float)
    if runtimes.shape != trace_estimates.shape:
        raise ValueError("runtimes and trace_estimates must have the same shape")
    frac = inaccuracy_pct / 100.0
    blended = runtimes + frac * (trace_estimates - runtimes)
    return np.maximum(blended, 1.0)


def overestimation_summary(runtimes: np.ndarray, estimates: np.ndarray) -> dict[str, float]:
    """Descriptive statistics of estimate quality (for reports/tests)."""
    runtimes = np.asarray(runtimes, dtype=float)
    estimates = np.asarray(estimates, dtype=float)
    factor = estimates / runtimes
    return {
        "mean_factor": float(factor.mean()),
        "median_factor": float(np.median(factor)),
        "frac_overestimated": float((factor > 1.0 + 1e-9).mean()),
        "frac_exact": float((np.abs(factor - 1.0) <= 1e-9).mean()),
        "frac_underestimated": float((factor < 1.0 - 1e-9).mean()),
    }
