"""Workload perturbations for robustness and failure-injection studies.

The paper sweeps one inaccuracy axis; these transforms inject other
real-world pathologies into an existing record stream so the test
suite and ablations can probe robustness:

* :func:`corrupt_estimates` — a fraction of jobs gets a *wildly* wrong
  estimate (fat-fingered requests, script bugs);
* :func:`inject_arrival_storm` — compress a window of arrivals into a
  burst (flash crowds, post-maintenance backlog);
* :func:`drop_jobs` — randomly cancel a fraction of submissions
  (SWF status CANCELLED), as users do;
* :func:`inflate_runtimes` — stretch actual runtimes while leaving the
  estimates untouched, turning over-estimators into overrunners.

All transforms are pure (new record lists; inputs untouched) and
deterministic in the supplied generator.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.workload.swf import STATUS_CANCELLED, SWFRecord


def _replace(rec: SWFRecord, **changes) -> SWFRecord:
    return dataclasses.replace(rec, **changes)


def corrupt_estimates(
    records: Sequence[SWFRecord],
    fraction: float,
    rng: np.random.Generator,
    low_factor: float = 0.01,
    high_factor: float = 100.0,
) -> list[SWFRecord]:
    """Give a ``fraction`` of jobs estimates off by orders of magnitude.

    Corrupted estimates are ``runtime × f`` with ``log10(f)`` uniform
    between ``log10(low_factor)`` and ``log10(high_factor)``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if not 0 < low_factor <= high_factor:
        raise ValueError("need 0 < low_factor <= high_factor")
    out = []
    for rec in records:
        if rec.run_time > 0 and rng.random() < fraction:
            exponent = rng.uniform(np.log10(low_factor), np.log10(high_factor))
            out.append(_replace(rec, requested_time=max(1.0, rec.run_time * 10**exponent)))
        else:
            out.append(rec)
    return out


def inject_arrival_storm(
    records: Sequence[SWFRecord],
    start: float,
    end: float,
    compression: float = 0.01,
) -> list[SWFRecord]:
    """Compress every arrival inside ``[start, end)`` towards ``start``.

    Arrivals in the window land at ``start + compression × offset``;
    later arrivals keep their absolute times (the storm does not create
    or destroy jobs, it only clumps them).
    """
    if end < start:
        raise ValueError("end before start")
    if not 0.0 < compression <= 1.0:
        raise ValueError("compression must be in (0, 1]")
    out = []
    for rec in records:
        t = rec.submit_time
        if start <= t < end:
            out.append(_replace(rec, submit_time=start + compression * (t - start)))
        else:
            out.append(rec)
    return sorted(out, key=lambda r: (r.submit_time, r.job_number))


def drop_jobs(
    records: Sequence[SWFRecord],
    fraction: float,
    rng: np.random.Generator,
) -> list[SWFRecord]:
    """Cancel a random ``fraction`` of jobs (marked, not removed).

    Cancelled records get SWF status CANCELLED and ``run_time = -1``,
    which makes them unusable for simulation — exactly how cancelled
    jobs appear in real archive traces.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    out = []
    for rec in records:
        if rng.random() < fraction:
            out.append(_replace(rec, status=STATUS_CANCELLED, run_time=-1.0))
        else:
            out.append(rec)
    return out


def inflate_runtimes(
    records: Sequence[SWFRecord],
    fraction: float,
    rng: np.random.Generator,
    max_inflation: float = 2.0,
) -> list[SWFRecord]:
    """Stretch a ``fraction`` of actual runtimes by up to ``max_inflation``.

    Estimates stay put, so inflated jobs whose new runtime exceeds
    their request become overrunners — the population LibraRisk's risk
    metric exists to catch.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if max_inflation <= 1.0:
        raise ValueError("max_inflation must be > 1")
    out = []
    for rec in records:
        if rec.run_time > 0 and rng.random() < fraction:
            factor = rng.uniform(1.0, max_inflation)
            out.append(_replace(rec, run_time=rec.run_time * factor))
        else:
            out.append(rec)
    return out
