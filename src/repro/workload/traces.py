"""Trace manipulation and the workload-construction pipeline.

``SWF records → (subset, arrival scaling) → estimates → deadlines →
simulator jobs``

Each stage matches one knob of the paper's experimental methodology
(§4): the 3000-job tail subset, the **arrival delay factor** (workload
intensity), the **estimate mode** (accurate / trace / p % inaccuracy)
and the **deadline model** (urgency classes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.cluster.job import Job
from repro.sim.rng import RngStreams
from repro.workload.deadlines import DeadlineModel
from repro.workload.estimates import (
    accurate_estimates,
    interpolate_inaccuracy,
    overestimation_summary,
)
from repro.workload.swf import MISSING, SWFRecord

ESTIMATE_MODES = ("accurate", "trace", "inaccuracy")


@dataclass(frozen=True)
class WorkloadSpec:
    """How to turn a base trace into simulator jobs."""

    #: Scales every inter-arrival time; < 1 compresses the trace and
    #: increases load (paper Fig. 1 sweeps 0.1–1.0).
    arrival_delay_factor: float = 1.0
    #: "accurate" (estimate = runtime), "trace" (the recorded user
    #: estimate), or "inaccuracy" (interpolated by inaccuracy_pct).
    estimate_mode: str = "trace"
    #: Only used when estimate_mode == "inaccuracy".
    inaccuracy_pct: float = 100.0
    #: Deadline assignment parameters.
    deadline_model: DeadlineModel = field(default_factory=DeadlineModel)

    def __post_init__(self) -> None:
        if self.arrival_delay_factor <= 0:
            raise ValueError("arrival_delay_factor must be > 0")
        if self.estimate_mode not in ESTIMATE_MODES:
            raise ValueError(
                f"estimate_mode must be one of {ESTIMATE_MODES}, got {self.estimate_mode!r}"
            )
        if not 0.0 <= self.inaccuracy_pct <= 100.0:
            raise ValueError("inaccuracy_pct must be in [0, 100]")


# -- record-level transforms ----------------------------------------------------
def usable_records(records: Sequence[SWFRecord]) -> list[SWFRecord]:
    """Drop records that cannot drive a simulation (no runtime/procs)."""
    return [r for r in records if r.usable]


def tail_subset(records: Sequence[SWFRecord], n: int) -> list[SWFRecord]:
    """The last ``n`` usable records by submit time, re-based to t = 0.

    This is the paper's "subset of the last 3000 jobs" selection.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    usable = sorted(usable_records(records), key=lambda r: (r.submit_time, r.job_number))
    subset = usable[-n:]
    if not subset:
        return []
    base = subset[0].submit_time
    return [
        SWFRecord(
            **{
                **{f: getattr(r, f) for f in r.__dataclass_fields__},
                "submit_time": r.submit_time - base,
            }
        )
        for r in subset
    ]


def scale_arrivals(records: Sequence[SWFRecord], factor: float) -> list[SWFRecord]:
    """Apply the arrival delay factor: scale inter-arrival times by ``factor``.

    The paper's example: with factor 0.1 a job that followed its
    predecessor by X seconds now follows it by 0.1·X seconds.
    """
    if factor <= 0:
        raise ValueError(f"arrival delay factor must be > 0, got {factor}")
    ordered = sorted(records, key=lambda r: (r.submit_time, r.job_number))
    if factor == 1.0:
        return ordered
    out: list[SWFRecord] = []
    prev_orig: Optional[float] = None
    prev_new = 0.0
    for r in ordered:
        if prev_orig is None:
            new_time = r.submit_time
        else:
            new_time = prev_new + factor * (r.submit_time - prev_orig)
        prev_orig, prev_new = r.submit_time, new_time
        out.append(
            SWFRecord(
                **{
                    **{f: getattr(r, f) for f in r.__dataclass_fields__},
                    "submit_time": new_time,
                }
            )
        )
    return out


# -- job construction -----------------------------------------------------------
def _trace_estimates(records: Sequence[SWFRecord]) -> np.ndarray:
    """Recorded user estimates; a missing estimate falls back to the runtime."""
    return np.asarray(
        [r.requested_time if r.requested_time != MISSING else r.run_time for r in records],
        dtype=float,
    )


def records_to_jobs(
    records: Sequence[SWFRecord],
    estimates: np.ndarray,
    deadlines: np.ndarray,
    classes: Sequence,
) -> list[Job]:
    """Zip records with per-job estimates/deadlines into simulator jobs."""
    if not (len(records) == len(estimates) == len(deadlines) == len(classes)):
        raise ValueError("records, estimates, deadlines and classes must align")
    jobs = []
    for r, est, dl, cls in zip(records, estimates, deadlines, classes):
        jobs.append(
            Job(
                runtime=float(r.run_time),
                estimated_runtime=float(est),
                numproc=int(r.procs),
                deadline=float(dl),
                submit_time=float(r.submit_time),
                urgency=cls,
                user=str(r.user_id) if r.user_id != MISSING else None,
                job_id=r.job_number,
            )
        )
    return jobs


def build_jobs(
    records: Sequence[SWFRecord],
    spec: WorkloadSpec,
    streams: RngStreams,
) -> list[Job]:
    """Full pipeline: records + spec → ready-to-submit jobs.

    The deadline stream is named so that sweeping the estimate mode (or
    the arrival factor) does **not** change which deadlines jobs get —
    panels (a) and (b) of every figure see identical deadlines, exactly
    as in the paper where deadlines derive from real runtimes only.
    """
    records = scale_arrivals(usable_records(records), spec.arrival_delay_factor)
    runtimes = np.asarray([r.run_time for r in records], dtype=float)

    if spec.estimate_mode == "accurate":
        estimates = accurate_estimates(runtimes)
    elif spec.estimate_mode == "trace":
        estimates = _trace_estimates(records)
    else:  # "inaccuracy"
        estimates = interpolate_inaccuracy(
            runtimes, _trace_estimates(records), spec.inaccuracy_pct
        )

    deadlines, classes = spec.deadline_model.assign(runtimes, streams.get("deadlines"))
    return records_to_jobs(records, estimates, deadlines, classes)


# -- statistics --------------------------------------------------------------------
def describe_records(records: Sequence[SWFRecord]) -> dict[str, float]:
    """Subset statistics in the form the paper reports them (§4)."""
    records = usable_records(records)
    if not records:
        return {"num_jobs": 0}
    submit = np.asarray([r.submit_time for r in records], dtype=float)
    runtimes = np.asarray([r.run_time for r in records], dtype=float)
    procs = np.asarray([r.procs for r in records], dtype=float)
    interarrival = np.diff(np.sort(submit))
    stats: dict[str, float] = {
        "num_jobs": float(len(records)),
        "span_days": float((submit.max() - submit.min()) / 86400.0),
        "mean_interarrival_s": float(interarrival.mean()) if len(interarrival) else 0.0,
        "mean_runtime_s": float(runtimes.mean()),
        "mean_runtime_h": float(runtimes.mean() / 3600.0),
        "mean_procs": float(procs.mean()),
        "max_procs": float(procs.max()),
    }
    stats.update(
        {f"estimate_{k}": v
         for k, v in overestimation_summary(runtimes, _trace_estimates(records)).items()}
    )
    return stats
