"""Compute-node models: space-shared and proportional time-shared.

Work accounting
---------------
Job runtimes are defined at a *reference* SPEC rating (the paper §3:
"the runtime estimate of a job has to be translated to its equivalent
value across heterogeneous nodes").  Internally a task carries **work**
in rating-seconds::

    work = runtime_seconds × reference_rating

A node of rating ``r`` executing a task at share (fraction) ``s``
performs ``r × s`` rating-seconds of work per wall-clock second.  For a
homogeneous cluster this is a pass-through; for heterogeneous ratings
it gives the translation the paper requires.

Each task tracks **two** work quantities:

* ``remaining_work`` — the actual work left (ground truth; the task
  finishes when this hits zero), and
* ``remaining_est_work`` — the work left according to the *user
  estimate* (what the admission controls see).

Both are consumed at the same CPU rate; they diverge exactly when the
estimate was wrong.  A task whose estimate is exhausted while actual
work remains is in **overrun** — it keeps a small floor share (see
:mod:`repro.cluster.share`) and is precisely the hazard LibraRisk's
risk metric detects and Libra's Eq. 2 capacity test cannot.
"""

from __future__ import annotations

import math
from array import array
from typing import Callable, Iterable, Optional, Sequence

from repro.cluster.job import Job
from repro.cluster.share import (
    DEFAULT_SHARE_PARAMS,
    SHARE_EPSILON,
    WORK_EPSILON,
    ShareParams,
    admission_share,
    effective_rates,
    nominal_share,
)
from repro.sim.events import Event, EventPriority
from repro.sim.kernel import Simulator

#: Listener signature: ``listener(node, task, now)`` on task completion.
TaskListener = Callable[["Node", "NodeTask", float], None]

#: Predicted delays below this many seconds are float noise, not risk.
PREDICTED_DELAY_EPSILON = 1e-6


class NodeTask:
    """One job's slice of work on one node."""

    __slots__ = (
        "job",
        "node_id",
        "remaining_work",
        "remaining_est_work",
        "rate",
        "added_at",
        "deadline",
    )

    def __init__(
        self,
        job: Job,
        node_id: int,
        work: float,
        est_work: float,
        added_at: float,
    ) -> None:
        self.job = job
        self.node_id = node_id
        self.remaining_work = float(work)
        self.remaining_est_work = float(est_work)
        self.rate = 0.0  # effective node fraction, set by recompute()
        self.added_at = float(added_at)
        #: The job's absolute deadline, snapshotted at placement.  A
        #: job's submit time (and hence deadline) is only ever adjusted
        #: *before* admission, so the copy cannot go stale while the
        #: task is resident — and it turns the admission scan's
        #: per-resident deadline read into a plain slot load.
        self.deadline = job.absolute_deadline

    @property
    def finished(self) -> bool:
        return self.remaining_work <= WORK_EPSILON

    @property
    def overrun(self) -> bool:
        """Estimate exhausted but actual work remains."""
        return self.remaining_est_work <= WORK_EPSILON and not self.finished

    def remaining_est_time(self, rating: float) -> float:
        """Estimated remaining runtime at full speed of a node with ``rating``."""
        return self.remaining_est_work / rating

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NodeTask job={self.job.job_id} node={self.node_id} "
            f"work={self.remaining_work:.6g} est={self.remaining_est_work:.6g} "
            f"rate={self.rate:.4f}>"
        )


class Node:
    """Base node: identity, SPEC rating, and a task-completion listener."""

    def __init__(
        self,
        node_id: int,
        rating: float,
        sim: Simulator,
        listener: Optional[TaskListener] = None,
    ) -> None:
        if rating <= 0:
            raise ValueError(f"rating must be > 0, got {rating}")
        self.node_id = int(node_id)
        self.rating = float(rating)
        self.sim = sim
        self.listener = listener
        self.tasks: dict[int, NodeTask] = {}  # job_id -> task
        self.busy_time = 0.0  # integrated rating-seconds executed (utilisation)
        #: Failed nodes are offline: they execute nothing and no policy
        #: may place work on them until repaired.
        self.online = True
        self.failures = 0

    # -- common helpers ----------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def idle(self) -> bool:
        return not self.tasks

    def has_job(self, job_id: int) -> bool:
        return job_id in self.tasks

    def _notify(self, task: NodeTask, now: float) -> None:
        if self.listener is not None:
            self.listener(self, task, now)

    def _materialize(self) -> None:
        """Apply deferred ledger chops (no-op without a chop log)."""

    def utilisation(self, horizon: float) -> float:
        """Fraction of this node's capacity used over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return self.busy_time / (self.rating * horizon)

    @property
    def available_for_work(self) -> bool:
        """Online and idle — the placement predicate for space sharing."""
        return self.online and self.idle

    # -- failure/repair (overridden per discipline for bookkeeping) ---------
    def fail(self, now: float) -> list[Job]:
        """Take the node offline; returns the jobs whose task was killed."""
        raise NotImplementedError

    def repair(self, now: float) -> None:
        """Bring a failed node back online, empty."""
        if self.online:
            raise RuntimeError(f"node {self.node_id} is not failed")
        self.online = True


class SpaceSharedNode(Node):
    """A node that runs exactly one task at a time, to completion.

    Used by EDF: the task executes at the node's full rating, so its
    completion instant is known exactly at start time and a single
    completion event suffices.
    """

    def __init__(
        self,
        node_id: int,
        rating: float,
        sim: Simulator,
        listener: Optional[TaskListener] = None,
    ) -> None:
        super().__init__(node_id, rating, sim, listener)
        self._completion_event: Optional[Event] = None

    @property
    def available(self) -> bool:
        return not self.tasks

    def start_task(self, job: Job, work: float, now: float) -> NodeTask:
        """Begin executing ``work`` rating-seconds of ``job`` exclusively."""
        if self.tasks:
            raise RuntimeError(f"node {self.node_id} is space-shared and already busy")
        task = NodeTask(job, self.node_id, work=work, est_work=work, added_at=now)
        task.rate = 1.0
        self.tasks[job.job_id] = task
        duration = work / self.rating
        self._completion_event = self.sim.schedule(
            duration,
            self._on_complete,
            priority=EventPriority.COMPLETION,
            name=f"node{self.node_id}:job{job.job_id}:done",
            payload=task,
        )
        return task

    def _on_complete(self, event: Event) -> None:
        task: NodeTask = event.payload
        now = self.sim.now
        self.busy_time += task.remaining_work
        task.remaining_work = 0.0
        task.remaining_est_work = 0.0
        del self.tasks[task.job.job_id]
        self._completion_event = None
        self._notify(task, now)

    def fail(self, now: float) -> list[Job]:
        """Kill the resident task (if any) and go offline.

        Work already performed is credited to ``busy_time``
        proportionally to elapsed run time.
        """
        if not self.online:
            raise RuntimeError(f"node {self.node_id} already failed")
        self.online = False
        self.failures += 1
        affected: list[Job] = []
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        for task in list(self.tasks.values()):
            started = task.added_at
            self.busy_time += max(0.0, (now - started)) * self.rating
            affected.append(task.job)
        self.tasks.clear()
        return affected

    def remove_task(self, job_id: int, now: float) -> Optional[NodeTask]:
        """Forcibly remove a job's task (sibling of a failed task)."""
        task = self.tasks.pop(job_id, None)
        if task is None:
            return None
        self.busy_time += max(0.0, (now - task.added_at)) * self.rating
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        return task

    def restore_task(self, job: Job, remaining_work: float, added_at: float) -> NodeTask:
        """Re-create a checkpointed resident task and its completion event.

        Space-shared execution runs at full rating, so the completion
        instant is exactly ``added_at + remaining_work / rating``
        (the work ledger is only zeroed at completion).
        """
        if self.tasks:
            raise RuntimeError(f"node {self.node_id} is space-shared and already busy")
        task = NodeTask(
            job, self.node_id, work=remaining_work, est_work=remaining_work,
            added_at=added_at,
        )
        task.rate = 1.0
        self.tasks[job.job_id] = task
        self._completion_event = self.sim.schedule_at(
            added_at + remaining_work / self.rating,
            self._on_complete,
            priority=EventPriority.COMPLETION,
            name=f"node{self.node_id}:job{job.job_id}:done",
            payload=task,
        )
        return task


class TimeSharedNode(Node):
    """Proportional-share node implementing Libra's execution discipline.

    The engine is event-driven: between scheduling events every task's
    rate is constant, so work advances linearly and the next completion
    instant is exact.  :meth:`sync` brings work ledgers up to ``now``;
    :meth:`recompute` re-derives Eq. 1 shares, converts them to
    effective rates, and (re)schedules the node's single pending
    completion event.

    :attr:`generation` counts share-relevant state changes — task
    add/remove, completion, overrun demotion (all via
    :meth:`recompute`), restore, failure and repair.  Admission fast
    paths key cached per-node verdicts on it; :meth:`sync` deliberately
    does *not* bump it, because the cross-submit caches
    (:meth:`min_resident_deadline`, :meth:`admission_aggregate`) depend
    only on task membership and on ledger values *at a recorded sync
    point*, never on values that drift between syncs.

    Deferred sync (the chop log)
    ----------------------------
    The eager admission scans sync every occupied node at every submit,
    and those sync instants ("chops") are part of the byte-identical
    ledger history: float subtraction is not associative, so skipping a
    chop and catching up later in one step produces different bits.
    Skipping a chop and catching up later *in the same steps* does not.
    A policy may therefore register a shared, append-only list of chop
    times via :meth:`attach_chop_log` and then *defer* a node's sync by
    simply not calling it: the node replays every recorded chop it
    missed — in order, with the identical per-chop arithmetic — the
    next time anything reads or advances its ledgers
    (:meth:`_materialize`, hooked into :meth:`sync` and every
    ledger-reading view).  The replayed history is bit-identical to the
    eager one; only *when* the Python work happens moves.
    """

    def __init__(
        self,
        node_id: int,
        rating: float,
        sim: Simulator,
        listener: Optional[TaskListener] = None,
        share_params: ShareParams = DEFAULT_SHARE_PARAMS,
    ) -> None:
        super().__init__(node_id, rating, sim, listener)
        self.share_params = share_params
        self._last_sync = sim.now
        self._completion_event: Optional[Event] = None
        #: Bumped on every task-set / share mutation; cache key for
        #: admission-side memoization (never reset, monotone).
        self.generation = 0
        self._min_deadline_gen = -1
        self._min_deadline = float("inf")
        # Deferred-sync chop log (see class docstring): a shared list of
        # sync instants appended by the admission scan, plus this node's
        # replay cursor into it.
        self._chops: Optional[list[float]] = None
        self._chop_idx = 0
        # Per-generation admission aggregate (see admission_aggregate).
        self._agg: Optional[tuple] = None
        self._agg_gen = -1
        # Per-generation projection column: resident deadlines snapshot.
        self._proj_gen = -1
        self._proj_deadlines: Optional[list[float]] = None
        # Reusable _project_sigma scratch columns (cleared per call so
        # the hot path allocates no fresh lists).
        self._scratch_orig: list[int] = []
        self._scratch_est: list[float] = []
        self._scratch_deadline: list[float] = []
        self._scratch_shares: list[float] = []
        # The completion event name is stable; format it once, not per
        # recompute (checkpointing pattern-matches on it).
        self._completion_name = f"node{self.node_id}:completion"

    # -- deferred sync -------------------------------------------------------
    def attach_chop_log(self, chops: list[float]) -> None:
        """Share an append-only list of sync instants with this node.

        The registering policy appends the current time once per
        admission scan *instead of* syncing every node; nodes it did not
        touch replay the missed chops on their next read/mutation.
        """
        self._chops = chops
        self._chop_idx = len(chops)

    def _materialize(self) -> None:
        """Replay every recorded chop this node has not applied yet.

        Bit-identical to having called :meth:`sync` at each recorded
        instant: same outer (chop) / inner (task) loop order, same
        per-chop arithmetic, same busy-time accumulation order.
        """
        chops = self._chops
        if chops is None:
            return
        i = self._chop_idx
        n = len(chops)
        if i >= n:
            return
        self._chop_idx = n
        last = self._last_sync
        tasks = self.tasks
        if not tasks:
            t = chops[n - 1]
            if t > last:
                self._last_sync = t
            return
        rating = self.rating
        busy = self.busy_time
        while i < n:
            t = chops[i]
            i += 1
            dt = t - last
            if dt > 0.0:
                for task in tasks.values():
                    consumed = task.rate * rating * dt
                    if consumed > 0.0:
                        remaining = task.remaining_work
                        busy += consumed if consumed < remaining else remaining
                        remaining -= consumed
                        task.remaining_work = remaining if remaining > 0.0 else 0.0
                        est_remaining = task.remaining_est_work - consumed
                        task.remaining_est_work = (
                            est_remaining if est_remaining > 0.0 else 0.0
                        )
                last = t
        self.busy_time = busy
        self._last_sync = last

    def utilisation(self, horizon: float) -> float:
        self._materialize()
        return super().utilisation(horizon)

    # -- time advance -------------------------------------------------------
    def sync(self, now: float) -> None:
        """Advance every task's work ledgers from the last sync to ``now``."""
        chops = self._chops
        if chops is not None:
            n = len(chops)
            idx = self._chop_idx
            if idx < n:
                if idx == n - 1 and chops[idx] >= now:
                    # Common case: the only pending chop is this very
                    # scan instant — replaying it IS the sync below, so
                    # just consume it (chops never exceed the clock).
                    self._chop_idx = n
                else:
                    self._materialize()
        dt = now - self._last_sync
        if dt < 0:
            raise ValueError(
                f"node {self.node_id}: sync to t={now:.6g} before last sync "
                f"t={self._last_sync:.6g}"
            )
        if dt > 0.0:
            # Hot path (one call per occupied node per admission scan):
            # min/max inlined as comparisons, attribute loads hoisted.
            # `task.rate * rating * dt` must stay left-associated — float
            # multiplication is not associative and the ledger values are
            # part of the byte-identical-export guarantee.
            rating = self.rating
            busy = self.busy_time
            for task in self.tasks.values():
                consumed = task.rate * rating * dt
                if consumed > 0.0:
                    remaining = task.remaining_work
                    busy += consumed if consumed < remaining else remaining
                    remaining -= consumed
                    task.remaining_work = remaining if remaining > 0.0 else 0.0
                    est_remaining = task.remaining_est_work - consumed
                    task.remaining_est_work = (
                        est_remaining if est_remaining > 0.0 else 0.0
                    )
            self.busy_time = busy
        self._last_sync = now

    # -- task management ----------------------------------------------------
    def add_task(self, job: Job, work: float, est_work: float, now: float) -> NodeTask:
        """Place a task of ``job`` on this node and rebalance shares."""
        if job.job_id in self.tasks:
            raise RuntimeError(f"job {job.job_id} already has a task on node {self.node_id}")
        self.sync(now)
        task = NodeTask(job, self.node_id, work=work, est_work=est_work, added_at=now)
        self.tasks[job.job_id] = task
        self.recompute(now)
        return task

    def recompute(self, now: float) -> None:
        """Re-derive shares/rates and reschedule the completion event.

        Must be called with work ledgers already synced to ``now``.
        """
        self.generation += 1
        tasks = self.tasks.values()
        # nominal_share inlined (same clamps, same float sequence): this
        # runs for every resident on every task add/remove/overrun.
        rating = self.rating
        floor = self.share_params.overrun_floor_share
        shares: list[float] = []
        for t in tasks:
            est = t.remaining_est_work / rating
            rem = t.deadline - now
            if est <= SHARE_EPSILON or rem <= 0.0:
                shares.append(floor)
            else:
                s = est / rem
                if s < SHARE_EPSILON:
                    s = SHARE_EPSILON
                elif s > 1.0:
                    s = 1.0
                shares.append(s)
        rates = effective_rates(shares, self.share_params)
        # Rate assignment fused with the next-completion scan
        # (:meth:`_next_completion_delay` semantics, one pass).
        horizon: Optional[float] = None
        for task, rate in zip(tasks, rates):
            task.rate = rate
            if rate <= SHARE_EPSILON:
                continue
            speed = rate * rating
            dt = task.remaining_work / speed
            if not task.overrun:
                est_dt = task.remaining_est_work / speed
                if est_dt < dt:
                    dt = est_dt
            if horizon is None or dt < horizon:
                horizon = dt

        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if horizon is not None:
            self._completion_event = self.sim.schedule(
                horizon,
                self._on_completion_event,
                priority=EventPriority.COMPLETION,
                name=self._completion_name,
            )

    def _next_completion_delay(self) -> Optional[float]:
        """Time to the next state change on this node.

        That is the earliest of (a) a task finishing its *actual* work
        and (b) a running task exhausting its *estimated* work — the
        moment its Eq. 1 share becomes undefined and it must be demoted
        to the overrun floor.  Without (b) an overrunning job would keep
        its stale (higher) share until some unrelated event happened to
        trigger a recompute.
        """
        best: Optional[float] = None
        for task in self.tasks.values():
            if task.rate <= SHARE_EPSILON:
                continue
            speed = task.rate * self.rating
            dt = task.remaining_work / speed
            if not task.overrun:
                dt = min(dt, task.remaining_est_work / speed)
            if best is None or dt < best:
                best = dt
        return best

    def _on_completion_event(self, event: Event) -> None:
        now = self.sim.now
        self._completion_event = None
        self.sync(now)
        finished = [t for t in self.tasks.values() if t.finished]
        for task in finished:
            del self.tasks[task.job.job_id]
        self.recompute(now)
        # Notify after the node state settled so listeners observe the
        # post-completion share allocation.
        for task in finished:
            self._notify(task, now)

    # -- failure/repair -------------------------------------------------------
    def fail(self, now: float) -> list[Job]:
        """Kill every resident task and go offline (ledgers synced first)."""
        if not self.online:
            raise RuntimeError(f"node {self.node_id} already failed")
        self.sync(now)
        self.online = False
        self.failures += 1
        self.generation += 1
        affected = [task.job for task in self.tasks.values()]
        self.tasks.clear()
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        return affected

    def repair(self, now: float) -> None:
        super().repair(now)
        # Restart the clock: nothing ran while offline.  Chops recorded
        # while this node was offline must never touch its ledgers.
        if self._chops is not None:
            self._chop_idx = len(self._chops)
        self._last_sync = now
        self.generation += 1

    def remove_task(self, job_id: int, now: float) -> Optional[NodeTask]:
        """Forcibly remove one task (sibling of a failed task) and rebalance."""
        if job_id not in self.tasks:
            return None
        self.sync(now)
        task = self.tasks.pop(job_id)
        self.recompute(now)
        return task

    def restore_tasks(
        self,
        entries: Sequence[tuple[Job, float, float, float]],
        now: float,
    ) -> None:
        """Re-create checkpointed resident tasks and rebalance shares.

        ``entries`` are ``(job, remaining_work, remaining_est_work,
        added_at)`` tuples with ledgers already advanced to ``now``
        (the snapshot synced them).  One :meth:`recompute` re-derives
        every rate — rates are pure functions of the restored ledgers —
        and schedules the node's completion event.
        """
        if self.tasks:
            raise RuntimeError(f"node {self.node_id} already has resident tasks")
        self._last_sync = now
        for job, work, est_work, added_at in entries:
            self.tasks[job.job_id] = NodeTask(
                job, self.node_id, work=work, est_work=est_work, added_at=added_at
            )
        self.recompute(now)

    # -- admission-control views ---------------------------------------------
    def min_resident_deadline(self) -> float:
        """Earliest absolute deadline among resident tasks (``inf`` if idle).

        Cached per :attr:`generation`: resident deadlines are constants,
        so the minimum changes only when the task set does.  Admission
        fast paths use it as the exact "poisoned node" test — once the
        clock reaches this instant some resident has a non-positive
        remaining deadline, which makes every Eq. 4 deadline-delay value
        (and hence σ_j) infinite regardless of the projection, so the
        node stays unsuitable for LibraRisk until its next mutation.
        The comparison involves no derived floats, so skipping the
        projection on it cannot change any decision.
        """
        if self._min_deadline_gen != self.generation:
            self._min_deadline = min(
                (t.deadline for t in self.tasks.values()),
                default=float("inf"),
            )
            self._min_deadline_gen = self.generation
        return self._min_deadline

    def admission_aggregate(self) -> Optional[tuple]:
        """Per-generation admission aggregate over the resident ledgers.

        Built lazily from the ledgers *as of* :attr:`_last_sync`
        (``t0``) and cached until the next :attr:`generation` bump.
        The admission fast paths feed it to the O(1) refutation
        certificates (:func:`repro.scheduling.risk.refute_sigma_zero`
        and libra's Eq. 2 over-commit bound).  Those certificates are
        one-sided: they may only *reject* a node, and the caller falls
        back to the exact projection whenever the aggregate cannot
        decide — so a ``None`` here (spare redistribution enabled,
        which breaks the monotone share-growth bound, or a resident
        deadline already elapsed at build time) merely disables the
        shortcut.

        Tuple layout::

            (t0, n_healthy, n_overrun, sum_min, d_min_h, est0_min_d,
             d_max, d_2nd, est0_max_d, min_est0,
             sum_zero, d_min_z, min_w_est0)

        Healthy/overrun follow the projection's classification at
        ``t0`` (estimated remaining time above/below
        ``SHARE_EPSILON``). ``sum_min`` is Σ min(share, 1) over
        healthy residents — a lower bound on the projection's first
        phase total at any later instant of the same generation,
        because every healthy share is non-decreasing while its rate
        stays fixed.  ``d_min_h``/``d_max``/``d_2nd`` are the healthy
        deadline extremes with tie-conservative build-time estimates
        (``est0_min_d`` is the *largest* estimate among earliest-
        deadline ties), and ``min_est0`` is the classification
        stability horizon. ``sum_zero``/``d_min_z``/``min_w_est0``
        are the Eq. 2 zero-mode share sum and its validity guards for
        libra's over-commit certificate.
        """
        if self._agg_gen == self.generation:
            agg = self._agg
            if agg is None or agg[0] >= self._last_sync:
                return agg
            # Ledgers advanced past the build instant: refresh so the
            # certificates get the sharpest (zero-staleness) bounds.
        self._agg_gen = self.generation
        if self.share_params.redistribute_spare:
            self._agg = None
            return None
        self._materialize()
        t0 = self._last_sync
        rating = self.rating
        work_threshold = WORK_EPSILON / rating
        n_healthy = 0
        n_overrun = 0
        sum_min = 0.0
        d_min_h = float("inf")
        est0_min_d = 0.0
        d_max = float("-inf")
        d_2nd = float("-inf")
        est0_max_d = 0.0
        min_est0 = float("inf")
        sum_zero = 0.0
        d_min_z = float("inf")
        min_w_est0 = float("inf")
        for task in self.tasks.values():
            est_work = task.remaining_est_work
            est_time = est_work / rating
            deadline = task.deadline
            if est_time <= SHARE_EPSILON:
                n_overrun += 1
            else:
                rem = deadline - t0
                if rem <= 0.0:
                    self._agg = None
                    return None
                n_healthy += 1
                s = est_time / rem
                sum_min += s if s < 1.0 else 1.0
                if deadline <= d_min_h:
                    if deadline < d_min_h:
                        d_min_h = deadline
                        est0_min_d = est_time
                    elif est_time > est0_min_d:
                        est0_min_d = est_time
                if deadline > d_max:
                    d_2nd = d_max
                    d_max = deadline
                    est0_max_d = est_time
                elif deadline > d_2nd:
                    d_2nd = deadline
                if est_time < min_est0:
                    min_est0 = est_time
            # Eq. 2 zero-mode sum (libra) has its own skip threshold.
            if est_time > work_threshold:
                rem_z = deadline - t0
                if rem_z > 0.0:
                    sum_zero += est_time / rem_z
                    if deadline < d_min_z:
                        d_min_z = deadline
                    if est_work < min_w_est0:
                        min_w_est0 = est_work
        self._agg = (
            t0, n_healthy, n_overrun, sum_min, d_min_h, est0_min_d,
            d_max, d_2nd, est0_max_d, min_est0,
            sum_zero, d_min_z, min_w_est0,
        )
        return self._agg

    def iter_share_terms(self, now: float) -> Iterable[tuple[NodeTask, float]]:
        """Yield ``(task, unclamped Eq. 1 share)`` for every resident task."""
        self._materialize()
        for task in self.tasks.values():
            yield task, admission_share(
                task.remaining_est_time(self.rating), task.job.remaining_deadline(now)
            )

    def total_admission_share(
        self,
        now: float,
        extra: Sequence[tuple[float, float]] = (),
        expired_job_share_mode: str = "zero",
    ) -> float:
        """Eq. 2 total share as the *admission control* computes it.

        Parameters
        ----------
        extra:
            Hypothetical ``(remaining_est_time, remaining_deadline)``
            pairs, e.g. the job under admission.
        expired_job_share_mode:
            How a resident job whose deadline has expired (or whose
            estimate is exhausted — share mathematically 0/undefined)
            enters the sum.  ``"zero"`` reproduces Libra's blindness to
            such jobs (paper narrative, default); ``"floor"`` counts the
            execution floor share; ``"infinite"`` makes the node
            unconditionally unsuitable.
        """
        if expired_job_share_mode not in ("zero", "floor", "infinite"):
            raise ValueError(f"unknown expired_job_share_mode {expired_job_share_mode!r}")
        self._materialize()
        total = 0.0
        for task in self.tasks.values():
            est_time = task.remaining_est_time(self.rating)
            rem_deadline = task.job.remaining_deadline(now)
            if est_time <= WORK_EPSILON / self.rating or rem_deadline <= 0.0:
                if expired_job_share_mode == "zero":
                    continue
                if expired_job_share_mode == "floor":
                    total += self.share_params.overrun_floor_share
                    continue
                return float("inf")
            total += admission_share(est_time, rem_deadline)
        for est_time, rem_deadline in extra:
            total += admission_share(est_time, rem_deadline)
        return total

    def predicted_delays(
        self,
        now: float,
        extra: Sequence[tuple[Job, float]] = (),
    ) -> list[tuple[Job, float]]:
        """Predicted Eq. 3 delays of every job on this node (Algorithm 1 l.4).

        The prediction is a deterministic forward projection of this
        node's own execution discipline, with the ``extra`` hypothetical
        jobs (pairs of ``(job, remaining_est_time)``) placed here now:
        shares are recomputed whenever a job's *estimated* work runs
        out, exactly as :meth:`recompute` will do at real completion
        events.  Consequences:

        * a node whose Eq. 1 shares fit (Σ ≤ 1, nobody in overrun)
          predicts zero delay for everyone — fast path, no simulation;
        * an over-committed node staggers its completions, so the
          projected delays are *unequal* and the node cannot masquerade
          as zero-risk (a single-phase projection would predict the
          identical deadline-delay Σ for every job — see
          ``tests/test_scheduling/test_risk.py`` for the algebra);
        * an **overrun** task (estimate already exhausted) has an
          unknowable completion; it contributes the delay it has
          already accrued, ``max(0, now − absolute_deadline)``, while
          its floor share keeps slowing its neighbours for the whole
          projection.

        Returns ``(job, predicted_delay)`` pairs, hypotheticals included.
        """
        self._materialize()
        entries: list[tuple[Job, float]] = [
            (t.job, t.remaining_est_time(self.rating)) for t in self.tasks.values()
        ]
        entries.extend((job, est_time) for job, est_time in extra)
        if not entries:
            return []

        # Fast path: every job healthy and the Eq. 2 sum fits.
        total = 0.0
        healthy = True
        for job, est_time in entries:
            rem = job.remaining_deadline(now)
            if est_time <= SHARE_EPSILON or rem <= 0.0:
                healthy = False
                break
            share = est_time / rem
            if share > 1.0:
                healthy = False
                break
            total += share
        if healthy and total <= 1.0 + SHARE_EPSILON:
            return [(job, 0.0) for job, _ in entries]

        return self._project_delays(now, entries)

    def _project_delays(
        self,
        now: float,
        entries: list[tuple[Job, float]],
    ) -> list[tuple[Job, float]]:
        """Forward-simulate the node on estimates only (slow path).

        Hot path of LibraRisk admission (one call per over-committed
        node per arriving job): flat parallel lists, no per-phase
        allocations beyond the share vector.
        """
        delays: dict[int, float] = {}

        # Overrun tasks never "finish" within the estimate model: record
        # their accrued delay, but keep them as permanent floor-share
        # occupants of the projection.
        floor = self.share_params.overrun_floor_share
        n_overruns = 0
        pend_jobs: list[Job] = []
        pend_est: list[float] = []
        pend_deadline: list[float] = []
        for job, est_time in entries:
            if est_time <= SHARE_EPSILON:
                delays[job.job_id] = max(0.0, now - job.absolute_deadline)
                n_overruns += 1
            else:
                pend_jobs.append(job)
                pend_est.append(est_time)
                pend_deadline.append(job.absolute_deadline)

        params = self.share_params
        redistribute = params.redistribute_spare
        overrun_share_sum = n_overruns * floor
        t = now
        # One loop iteration per projected completion phase, with
        # nominal_share inlined (same clamps, same float sequence) and
        # the pending lists compacted in place instead of reallocated —
        # this is the single hottest loop of a LibraRisk run.
        while pend_jobs:
            total = overrun_share_sum
            shares = []
            append_share = shares.append
            for est, deadline in zip(pend_est, pend_deadline):
                rem = deadline - t
                if est <= SHARE_EPSILON or rem <= 0.0:
                    s = floor
                else:
                    s = est / rem
                    if s < SHARE_EPSILON:
                        s = SHARE_EPSILON
                    elif s > 1.0:
                        s = 1.0
                append_share(s)
                total += s
            if total > 1.0 or (redistribute and total > SHARE_EPSILON):
                scale = 1.0 / total
            else:
                scale = 1.0

            # Earliest estimated completion among pending jobs.
            best_dt = -1.0
            for est, s in zip(pend_est, shares):
                rate = s * scale
                if rate <= SHARE_EPSILON:
                    continue
                dt = est / rate
                if best_dt < 0.0 or dt < best_dt:
                    best_dt = dt
            if best_dt < 0.0:
                for job in pend_jobs:
                    delays[job.job_id] = float("inf")
                break

            t += best_dt
            write = 0
            for i, s in enumerate(shares):
                remaining = pend_est[i] - s * scale * best_dt
                if remaining <= SHARE_EPSILON:
                    deadline = pend_deadline[i]
                    delay = t - deadline
                    delays[pend_jobs[i].job_id] = (
                        0.0 if delay < PREDICTED_DELAY_EPSILON else delay
                    )
                else:
                    pend_jobs[write] = pend_jobs[i]
                    pend_est[write] = remaining
                    pend_deadline[write] = pend_deadline[i]
                    write += 1
            del pend_jobs[write:], pend_est[write:], pend_deadline[write:]

        return [(job, delays[job.job_id]) for job, _ in entries]

    def _project_sigma(
        self,
        now: float,
        est_new: float,
        deadline_new: float,
    ) -> tuple[bool, float]:
        """Columnar fusion of :meth:`_project_delays` with the σ test.

        The residual slow path of LibraRisk's fast scan: residents plus
        one hypothetical ``(est_new, deadline_new)`` placement, phases
        identical float-for-float to :meth:`_project_delays` (same
        share clamps, same accumulation order, same in-place
        compaction) but carried positionally — per-task deadline
        columns cached per :attr:`generation` in a stdlib ``array``,
        per-call estimate columns, projected delays in a flat list —
        with no :class:`Job` tuples, no per-job dict, and the Eq. 5/6
        accumulation fused over the same entries order
        (:func:`repro.scheduling.assess_delays` float sequence).

        Returns ``(zero_risk, max_delay)``; an infinite Eq. 4 value
        short-circuits to ``(False, inf)`` exactly as the scan's early
        exit did — ``assess_delays`` maps it to σ = ∞, never suitable.
        """
        tasks = self.tasks
        col = self._proj_deadlines
        if col is None or self._proj_gen != self.generation:
            col = array("d", (t.deadline for t in tasks.values()))
            self._proj_deadlines = col
            self._proj_gen = self.generation
        rating = self.rating
        floor = self.share_params.overrun_floor_share
        m = len(col)
        n_entries = m + 1
        delays = [0.0] * n_entries
        # Scratch columns live on the node so the hot path allocates no
        # fresh lists per call (cleared below before reuse).
        pend_orig = self._scratch_orig
        pend_est = self._scratch_est
        pend_deadline = self._scratch_deadline
        shares = self._scratch_shares
        del pend_orig[:], pend_est[:], pend_deadline[:]
        n_overruns = 0
        i = 0
        # Entries order = residents in task order, then the candidate —
        # the same order _projected_suitable fed to _project_delays.
        for task in tasks.values():
            est = task.remaining_est_work / rating
            if est <= SHARE_EPSILON:
                delay = now - col[i]
                delays[i] = delay if delay > 0.0 else 0.0
                n_overruns += 1
            else:
                pend_orig.append(i)
                pend_est.append(est)
                pend_deadline.append(col[i])
            i += 1
        if est_new <= SHARE_EPSILON:
            delay = now - deadline_new
            delays[m] = delay if delay > 0.0 else 0.0
            n_overruns += 1
        else:
            pend_orig.append(m)
            pend_est.append(est_new)
            pend_deadline.append(deadline_new)

        params = self.share_params
        redistribute = params.redistribute_spare
        overrun_share_sum = n_overruns * floor
        inf = float("inf")
        t = now
        while pend_est:
            total = overrun_share_sum
            del shares[:]
            append_share = shares.append
            for est, deadline in zip(pend_est, pend_deadline):
                rem = deadline - t
                if est <= SHARE_EPSILON or rem <= 0.0:
                    s = floor
                else:
                    s = est / rem
                    if s < SHARE_EPSILON:
                        s = SHARE_EPSILON
                    elif s > 1.0:
                        s = 1.0
                append_share(s)
                total += s
            if total > 1.0 or (redistribute and total > SHARE_EPSILON):
                scale = 1.0 / total
            else:
                scale = 1.0

            best_dt = -1.0
            for est, s in zip(pend_est, shares):
                rate = s * scale
                if rate <= SHARE_EPSILON:
                    continue
                dt = est / rate
                if best_dt < 0.0 or dt < best_dt:
                    best_dt = dt
            if best_dt < 0.0:
                for orig in pend_orig:
                    delays[orig] = inf
                break

            t += best_dt
            write = 0
            for i, s in enumerate(shares):
                remaining = pend_est[i] - s * scale * best_dt
                if remaining <= SHARE_EPSILON:
                    deadline = pend_deadline[i]
                    delay = t - deadline
                    delays[pend_orig[i]] = (
                        0.0 if delay < PREDICTED_DELAY_EPSILON else delay
                    )
                else:
                    pend_orig[write] = pend_orig[i]
                    pend_est[write] = remaining
                    pend_deadline[write] = pend_deadline[i]
                    write += 1
            del pend_orig[write:], pend_est[write:], pend_deadline[write:]

        # σ accumulation in entries order, Σv / Σv² left-to-right as
        # assess_delays' sum() calls; early exit on infinite values.
        isinf = math.isinf
        sum_v = 0.0
        sum_v2 = 0.0
        max_delay = 0.0
        for i in range(m):
            rem = col[i] - now
            delay = delays[i]
            if rem <= 0.0 or isinf(delay):
                return (False, inf)
            v = (delay + rem) / rem
            if isinf(v):
                return (False, inf)
            sum_v += v
            sum_v2 += v * v
            if delay > max_delay:
                max_delay = delay
        rem = deadline_new - now
        delay = delays[m]
        if rem <= 0.0 or isinf(delay):
            return (False, inf)
        v = (delay + rem) / rem
        if isinf(v):
            return (False, inf)
        sum_v += v
        sum_v2 += v * v
        if delay > max_delay:
            max_delay = delay
        mu = sum_v / n_entries
        return (sum_v2 / n_entries - mu * mu <= 0.0, max_delay)
