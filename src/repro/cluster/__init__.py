"""Cluster substrate: jobs, nodes, the cluster, and the RMS front-end.

Models the machine the paper simulates — an IBM SP2-class cluster of
``m`` computation nodes, each with a SPEC rating — together with the
two execution disciplines the compared policies need:

* **space-shared** nodes (one task per node at a time) for EDF;
* **time-shared proportional-share** nodes (Libra's Eq. 1–2 shares)
  for Libra and LibraRisk.

The :class:`~repro.cluster.rms.ResourceManagementSystem` is the single
submission interface required by the paper's scenario (Section 3): all
jobs enter through it, so the admission control is aware of the whole
cluster workload.
"""

from repro.cluster.job import Job, JobState, UrgencyClass
from repro.cluster.node import Node, NodeTask, SpaceSharedNode, TimeSharedNode
from repro.cluster.cluster import Cluster
from repro.cluster.failures import NodeFailureInjector
from repro.cluster.rms import ResourceManagementSystem
from repro.cluster.share import ShareParams

__all__ = [
    "Cluster",
    "NodeFailureInjector",
    "ShareParams",
    "Job",
    "JobState",
    "Node",
    "NodeTask",
    "ResourceManagementSystem",
    "SpaceSharedNode",
    "TimeSharedNode",
    "UrgencyClass",
]
