"""The cluster Resource Management System (RMS) front-end.

The RMS is the *single* interface through which jobs enter the cluster
(paper §3, assumption 4), so the admission control policy it hosts is
aware of the entire workload.  It:

* turns a workload (a list of :class:`~repro.cluster.job.Job`) into
  arrival events on the simulator,
* hands each arriving job to the policy's ``on_job_submitted``,
* records the outcome of every job for the metrics layer.

The policy object owns all scheduling state (queues, node listeners);
the RMS is deliberately thin so that policies are interchangeable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job, JobState
from repro.sim.events import Event, EventPriority
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hooks import LifecycleObserver
    from repro.scheduling.base import SchedulingPolicy


class ResourceManagementSystem:
    """Hosts one admission-control policy over one cluster."""

    def __init__(self, sim: Simulator, cluster: Cluster, policy: "SchedulingPolicy") -> None:
        self.sim = sim
        self.cluster = cluster
        self.policy = policy
        self.jobs: list[Job] = []           # every job ever submitted, in arrival order
        self.accepted: list[Job] = []
        self.rejected: list[Job] = []
        self.completed: list[Job] = []
        self.failed: list[Job] = []
        #: Optional :class:`~repro.obs.hooks.LifecycleObserver` notified
        #: of every job transition the RMS witnesses.  Must be passive.
        self.observer: Optional["LifecycleObserver"] = None
        policy.bind(sim=sim, cluster=cluster, rms=self)

    def _notify_observer(self, job: Job, transition: str) -> None:
        if self.observer is not None:
            self.observer.on_job_transition(job, transition, self.sim.now)

    # -- workload intake -----------------------------------------------------
    def submit(self, job: Job) -> None:
        """Schedule the arrival event for one job at its submit time.

        This is the single intake path: :meth:`submit_all` loops over it
        for closed batch workloads, and the online serving engine
        (:class:`repro.service.engine.AdmissionEngine`) calls it for
        each live arrival.

        Raises
        ------
        ValueError
            If the job was already submitted, or its ``submit_time``
            lies before the simulated clock — an out-of-order arrival
            the event heap could not honour.
        """
        if job.state is not JobState.CREATED:
            raise ValueError(f"job {job.job_id} already {job.state.value}; cannot submit")
        if job.submit_time < self.sim.now:
            raise ValueError(
                f"job {job.job_id} arrives out of order: submit_time "
                f"{job.submit_time:.6g}s is before the clock at {self.sim.now:.6g}s"
            )
        self.sim.schedule_at(
            job.submit_time,
            self._on_arrival,
            priority=EventPriority.ARRIVAL,
            name=f"arrive:job{job.job_id}",
            payload=job,
        )

    def submit_all(self, jobs: Iterable[Job]) -> int:
        """Schedule an arrival event for every job at its submit time."""
        count = 0
        for job in jobs:
            self.submit(job)
            count += 1
        return count

    def _on_arrival(self, event: Event) -> None:
        job: Job = event.payload
        job.mark_submitted()
        self.jobs.append(job)
        self._notify_observer(job, "submitted")
        self.policy.on_job_submitted(job, self.sim.now)

    # -- policy callbacks -------------------------------------------------------
    def notify_accepted(self, job: Job) -> None:
        """Policy accepted ``job`` (it is queued or running)."""
        self.accepted.append(job)
        self._notify_observer(job, "accepted")

    def notify_rejected(self, job: Job, reason: str = "") -> None:
        """Policy refused ``job`` at admission (or EDF's dispatch check)."""
        if not job.state is JobState.REJECTED:
            job.mark_rejected(reason)
        self.rejected.append(job)
        self._notify_observer(job, "rejected")

    def notify_completed(self, job: Job) -> None:
        """Policy observed the last task of ``job`` finish."""
        self.completed.append(job)
        self._notify_observer(job, "completed")

    def notify_failed(self, job: Job) -> None:
        """Policy observed ``job`` die with a failed node."""
        self.failed.append(job)
        self._notify_observer(job, "failed")

    # -- bookkeeping views ---------------------------------------------------------
    @property
    def acceptance_ratio(self) -> Optional[float]:
        if not self.jobs:
            return None
        return len(self.accepted) / len(self.jobs)

    def unfinished_accepted(self) -> list[Job]:
        """Accepted jobs still running at the horizon (not completed or failed)."""
        return [j for j in self.accepted if not j.completed and j.state is not JobState.FAILED]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RMS jobs={len(self.jobs)} accepted={len(self.accepted)} "
            f"rejected={len(self.rejected)} completed={len(self.completed)}>"
        )
