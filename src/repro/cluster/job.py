"""The Job model and its lifecycle state machine.

Terminology follows the paper (Section 3):

* ``runtime`` — the *actual* time the job needs on a full node of the
  reference SPEC rating.  It excludes waiting time and communication
  latency, and translates across heterogeneous nodes via the rating.
* ``estimated_runtime`` — what the user *claimed* at submission; the
  admission controls see only this.
* ``numproc`` — minimum number of processors (nodes) required.
* ``deadline`` — a *duration* from submission: the job is useful only
  if ``finish_time − submit_time ≤ deadline`` (hard deadline SLA).

Derived quantities (Eq. 3 of the paper):

* ``delay = max(0, (finish_time − submit_time) − deadline)``
* ``slowdown = response_time / runtime`` where
  ``response_time = finish_time − submit_time``.
"""

from __future__ import annotations

import enum
import threading
from typing import Optional


class JobState(enum.Enum):
    """Lifecycle of a job inside the RMS."""

    CREATED = "created"        # built from the workload, not yet submitted
    SUBMITTED = "submitted"    # handed to the RMS, admission pending
    QUEUED = "queued"          # accepted but waiting (EDF only)
    RUNNING = "running"        # at least one task executing
    COMPLETED = "completed"    # all tasks finished
    REJECTED = "rejected"      # admission control refused it
    FAILED = "failed"          # a node it ran on failed


class UrgencyClass(enum.Enum):
    """Deadline urgency class from the experimental methodology (§4)."""

    HIGH = "high"  # low deadline/runtime factor — tight deadline
    LOW = "low"    # high deadline/runtime factor — loose deadline


_VALID_TRANSITIONS = {
    JobState.CREATED: {JobState.SUBMITTED},
    JobState.SUBMITTED: {JobState.QUEUED, JobState.RUNNING, JobState.REJECTED},
    JobState.QUEUED: {JobState.RUNNING, JobState.REJECTED},
    JobState.RUNNING: {JobState.COMPLETED, JobState.FAILED},
    JobState.COMPLETED: set(),
    JobState.REJECTED: set(),
    JobState.FAILED: set(),
}

_id_lock = threading.Lock()
_next_auto_id = 1


def _auto_id() -> int:
    global _next_auto_id
    with _id_lock:
        assigned = _next_auto_id
        _next_auto_id += 1
        return assigned


def reserve_job_ids(through: int) -> None:
    """Advance the auto-id counter past ``through``.

    Restoring a checkpoint or replaying a WAL rebuilds jobs under their
    original explicit ids without drawing from the counter; a service
    that then accepts a submit *without* an id must not hand out an id
    a recovered job already owns (the duplicate-id guard would refuse
    it, or worse, answer with the old job's decision).  Recovery paths
    call this with the highest id they materialised.
    """
    global _next_auto_id
    with _id_lock:
        if through >= _next_auto_id:
            _next_auto_id = through + 1

#: Completions within this many seconds past the deadline count as on
#: time.  Libra's proportional share finishes jobs *exactly at* their
#: deadline by construction, so event-time float noise must not flip
#: them to "late" (sub-microsecond precision is far below anything the
#: second-scale traces can express).
DELAY_TOLERANCE = 1e-6


class Job:
    """A deadline-constrained parallel job.

    Parameters
    ----------
    runtime:
        Actual runtime in seconds on a reference-rating node (> 0).
    estimated_runtime:
        User-supplied runtime estimate in seconds (> 0).
    numproc:
        Number of nodes the job needs (>= 1).
    deadline:
        Relative hard deadline in seconds from submission (> 0).
    submit_time:
        Workload-specified submission time (absolute simulated seconds).
    urgency:
        Deadline urgency class, for per-class metrics.
    job_id:
        Stable identifier; auto-assigned when omitted.
    """

    __slots__ = (
        "job_id",
        "submit_time",
        "runtime",
        "estimated_runtime",
        "numproc",
        "deadline",
        "urgency",
        "user",
        "state",
        "start_time",
        "finish_time",
        "assigned_nodes",
        "reject_reason",
    )

    def __init__(
        self,
        runtime: float,
        estimated_runtime: float,
        numproc: int,
        deadline: float,
        submit_time: float = 0.0,
        urgency: UrgencyClass = UrgencyClass.LOW,
        user: Optional[str] = None,
        job_id: Optional[int] = None,
    ) -> None:
        if runtime <= 0:
            raise ValueError(f"runtime must be > 0, got {runtime}")
        if estimated_runtime <= 0:
            raise ValueError(f"estimated_runtime must be > 0, got {estimated_runtime}")
        if numproc < 1:
            raise ValueError(f"numproc must be >= 1, got {numproc}")
        if deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {deadline}")
        if submit_time < 0:
            raise ValueError(f"submit_time must be >= 0, got {submit_time}")
        self.job_id = int(job_id) if job_id is not None else _auto_id()
        self.submit_time = float(submit_time)
        self.runtime = float(runtime)
        self.estimated_runtime = float(estimated_runtime)
        self.numproc = int(numproc)
        self.deadline = float(deadline)
        self.urgency = urgency
        self.user = user
        self.state = JobState.CREATED
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.assigned_nodes: list[int] = []
        self.reject_reason: Optional[str] = None

    # -- state machine ----------------------------------------------------
    def transition(self, new_state: JobState) -> None:
        """Move the job to ``new_state``, enforcing legal transitions."""
        if new_state not in _VALID_TRANSITIONS[self.state]:
            raise ValueError(
                f"job {self.job_id}: illegal transition {self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def mark_submitted(self) -> None:
        self.transition(JobState.SUBMITTED)

    def mark_queued(self) -> None:
        self.transition(JobState.QUEUED)

    def mark_running(self, now: float, nodes: list[int]) -> None:
        self.transition(JobState.RUNNING)
        self.start_time = float(now)
        self.assigned_nodes = list(nodes)

    def mark_completed(self, now: float) -> None:
        self.transition(JobState.COMPLETED)
        self.finish_time = float(now)

    def mark_rejected(self, reason: str = "") -> None:
        self.transition(JobState.REJECTED)
        self.reject_reason = reason or None

    def mark_failed(self, now: float) -> None:
        """The job was killed by a node failure; it will never finish."""
        self.transition(JobState.FAILED)
        self.finish_time = float(now)

    # -- deadlines and SLA quantities (Eq. 3) ------------------------------
    @property
    def absolute_deadline(self) -> float:
        """Wall-clock instant by which the job must finish."""
        return self.submit_time + self.deadline

    def remaining_deadline(self, now: float) -> float:
        """Time left until the deadline (negative once expired)."""
        return self.absolute_deadline - now

    @property
    def accepted(self) -> bool:
        return self.state in (
            JobState.QUEUED, JobState.RUNNING, JobState.COMPLETED, JobState.FAILED
        )

    @property
    def completed(self) -> bool:
        return self.state is JobState.COMPLETED

    @property
    def response_time(self) -> Optional[float]:
        """``finish − submit``; includes waiting time.  ``None`` until done."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def delay(self) -> Optional[float]:
        """Eq. 3: positive part of response time beyond the deadline."""
        rt = self.response_time
        if rt is None:
            return None
        raw = rt - self.deadline
        return 0.0 if raw <= DELAY_TOLERANCE else raw

    @property
    def deadline_met(self) -> Optional[bool]:
        """True iff the job completed within its hard deadline."""
        if not self.completed:
            return None if self.state is JobState.RUNNING else False
        return self.delay == 0.0

    @property
    def slowdown(self) -> Optional[float]:
        """Response time over minimum runtime (>= 1 for a well-formed run)."""
        rt = self.response_time
        if rt is None:
            return None
        return rt / self.runtime

    @property
    def overestimation_factor(self) -> float:
        """``estimate / runtime`` — > 1 when the user over-estimated."""
        return self.estimated_runtime / self.runtime

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Job {self.job_id} {self.state.value} run={self.runtime:.6g} "
            f"est={self.estimated_runtime:.6g} np={self.numproc} dl={self.deadline:.6g}>"
        )
