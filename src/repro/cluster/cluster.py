"""The cluster: a set of nodes plus the reference rating for work translation."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.cluster.job import Job
from repro.cluster.node import Node, SpaceSharedNode, TimeSharedNode
from repro.cluster.share import DEFAULT_SHARE_PARAMS, ShareParams
from repro.sim.kernel import Simulator


class Cluster:
    """A collection of compute nodes managed as one resource.

    Parameters
    ----------
    nodes:
        The node objects (all space-shared or all time-shared for the
        policies in this library; mixing is allowed but no bundled
        policy uses it).
    reference_rating:
        SPEC rating at which job runtimes are expressed.  For the SDSC
        SP2 experiments this equals the node rating, making work
        translation the identity.
    """

    def __init__(self, nodes: Sequence[Node], reference_rating: float) -> None:
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        if reference_rating <= 0:
            raise ValueError(f"reference_rating must be > 0, got {reference_rating}")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("node ids must be unique")
        self.nodes: list[Node] = list(nodes)
        self.reference_rating = float(reference_rating)
        self._by_id = {n.node_id: n for n in nodes}

    # -- construction -------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        sim: Simulator,
        num_nodes: int,
        rating: float = 168.0,
        discipline: str = "time_shared",
        share_params: ShareParams = DEFAULT_SHARE_PARAMS,
        reference_rating: Optional[float] = None,
    ) -> "Cluster":
        """Build an SDSC-SP2-style homogeneous cluster.

        ``discipline`` is ``"time_shared"`` (Libra/LibraRisk) or
        ``"space_shared"`` (EDF).
        """
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        nodes: list[Node]
        if discipline == "time_shared":
            nodes = [
                TimeSharedNode(i, rating, sim, share_params=share_params)
                for i in range(num_nodes)
            ]
        elif discipline == "space_shared":
            nodes = [SpaceSharedNode(i, rating, sim) for i in range(num_nodes)]
        else:
            raise ValueError(f"unknown discipline {discipline!r}")
        return cls(nodes, reference_rating=reference_rating or rating)

    @classmethod
    def heterogeneous(
        cls,
        sim: Simulator,
        ratings: Sequence[float],
        discipline: str = "time_shared",
        share_params: ShareParams = DEFAULT_SHARE_PARAMS,
        reference_rating: Optional[float] = None,
    ) -> "Cluster":
        """Build a cluster with per-node SPEC ratings.

        Job runtimes are expressed at ``reference_rating`` (defaults to
        the *minimum* node rating, so every node is at least as fast as
        the reference and estimated times shrink on faster nodes —
        exactly the translation the paper's §3 requires).
        """
        if not ratings:
            raise ValueError("need at least one rating")
        if any(r <= 0 for r in ratings):
            raise ValueError("ratings must be > 0")
        nodes: list[Node]
        if discipline == "time_shared":
            nodes = [
                TimeSharedNode(i, r, sim, share_params=share_params)
                for i, r in enumerate(ratings)
            ]
        elif discipline == "space_shared":
            nodes = [SpaceSharedNode(i, r, sim) for i, r in enumerate(ratings)]
        else:
            raise ValueError(f"unknown discipline {discipline!r}")
        return cls(nodes, reference_rating=reference_rating or min(ratings))

    # -- lookup ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def node(self, node_id: int) -> Node:
        return self._by_id[node_id]

    # -- work translation ------------------------------------------------------
    def work_of(self, runtime_seconds: float) -> float:
        """Translate a runtime at the reference rating into work units."""
        return runtime_seconds * self.reference_rating

    def est_time_on(self, node: Node, est_runtime_seconds: float) -> float:
        """Estimated full-speed runtime of a job on a specific node."""
        return est_runtime_seconds * self.reference_rating / node.rating

    # -- aggregate views ---------------------------------------------------------
    @property
    def total_rating(self) -> float:
        return sum(n.rating for n in self.nodes)

    def idle_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.idle]

    def running_jobs(self) -> set[int]:
        """Distinct job ids with at least one resident task."""
        out: set[int] = set()
        for n in self.nodes:
            out.update(n.tasks.keys())
        return out

    def utilisation(self, horizon: float) -> float:
        """Cluster-wide fraction of capacity used over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        for n in self.nodes:
            n._materialize()  # flush deferred ledger chops before reading
        used = sum(n.busy_time for n in self.nodes)
        return used / (self.total_rating * horizon)

    def tasks_of(self, job: Job) -> list:
        return [n.tasks[job.job_id] for n in self.nodes if job.job_id in n.tasks]
