"""Proportional processor-share arithmetic (Libra, Eq. 1–2).

These are pure functions over plain numbers so both the node execution
engine (:mod:`repro.cluster.node`) and the admission controls
(:mod:`repro.scheduling`) can use them without import cycles.

Definitions (paper §3.1)
------------------------
Eq. 1  ``share_ij = remaining_runtime_ij / remaining_deadline_i``
Eq. 2  ``total_share_j = Σ_i share_ij``

A node can honour all its deadlines iff ``total_share_j <= 1`` (the
node has at least the total share of processor time available).

Execution-rate policy
---------------------
The paper leaves two degenerate cases unspecified; :class:`ShareParams`
makes the choices explicit and sweepable (see DESIGN.md §3):

* **overrun** — a running job whose *estimated* remaining runtime is
  exhausted while actual work remains, or whose remaining deadline is
  non-positive, has an undefined Eq. 1 share.  Such a job receives
  ``overrun_floor_share`` so it cannot starve.
* **over-commitment** — after estimate errors the sum of nominal
  shares can exceed 1; all rates are then scaled by ``1/Σ`` so the
  node never does more than one node-second of work per second.
* **spare capacity** — by default spare share is left idle (a job
  progresses exactly at its Eq. 1 share, which keeps Eq. 1 invariant
  over time for accurate estimates).  With ``redistribute_spare`` the
  leftover is handed out proportionally, finishing jobs early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

#: Work below this many rating-seconds counts as finished (float slop).
WORK_EPSILON = 1e-6

#: Shares below this are treated as zero.
SHARE_EPSILON = 1e-12


@dataclass(frozen=True)
class ShareParams:
    """Knobs of the proportional-share execution discipline."""

    #: Share given to a job in overrun (estimate exhausted or deadline
    #: expired) so it keeps progressing.  Must be in (0, 1].
    overrun_floor_share: float = 0.05

    #: Give unused node capacity to running jobs proportionally.
    redistribute_spare: bool = False

    def __post_init__(self) -> None:
        if not (0.0 < self.overrun_floor_share <= 1.0):
            raise ValueError(
                f"overrun_floor_share must be in (0, 1], got {self.overrun_floor_share}"
            )


DEFAULT_SHARE_PARAMS = ShareParams()


def nominal_share(
    remaining_est_time: float,
    remaining_deadline: float,
    params: ShareParams = DEFAULT_SHARE_PARAMS,
) -> float:
    """Eq. 1 share for one job, with the overrun floor applied.

    Parameters
    ----------
    remaining_est_time:
        Estimated remaining runtime *at full node speed*, seconds.
    remaining_deadline:
        Time until the job's absolute deadline, seconds (may be <= 0).

    Returns
    -------
    float
        The share in ``(0, 1]``.  A share greater than 1 would be
        physically meaningless as an execution rate, so the result is
        clamped; use :func:`admission_share` for the *unclamped* Eq. 1
        value that the admission test sums.
    """
    if remaining_est_time <= SHARE_EPSILON or remaining_deadline <= 0.0:
        return params.overrun_floor_share
    return min(1.0, max(remaining_est_time / remaining_deadline, SHARE_EPSILON))


def admission_share(remaining_est_time: float, remaining_deadline: float) -> float:
    """Unclamped Eq. 1 share used in the Eq. 2 admission sum.

    A non-positive remaining deadline means the job can no longer meet
    its SLA at any rate; the share is infinite, which correctly makes
    any node carrying such a job fail the ``total <= 1`` test.
    """
    if remaining_deadline <= 0.0:
        return float("inf")
    return max(0.0, remaining_est_time) / remaining_deadline


def total_share(shares: Sequence[float]) -> float:
    """Eq. 2: the sum of per-job shares on one node."""
    return float(sum(shares))


def effective_rates(
    shares: Sequence[float],
    params: ShareParams = DEFAULT_SHARE_PARAMS,
) -> list[float]:
    """Convert nominal shares into execution rates summing to <= 1.

    * If the node is over-committed (``Σ shares > 1``) every rate is
      scaled by ``1/Σ``.
    * Otherwise each job runs at its nominal share; with
      ``redistribute_spare`` the idle remainder is split
      proportionally to the nominal shares.

    .. note::
       Because every rate returned here is ≤ the job's nominal share
       ``est/rem``, each job's share is **non-decreasing** until the
       next recompute: the estimate drains at most ``share`` per unit
       time while the deadline drains at exactly 1.  The O(1)
       admission certificates (``risk.refute_sigma_zero``,
       ``libra._over_commitment_certified``) are sound only under this
       monotonicity — a change that lets a rate exceed the nominal
       share must revisit them (``REPRO_VERIFY_CERT=1`` audits every
       firing).
    """
    total = sum(shares)
    if total <= SHARE_EPSILON:
        return [0.0 for _ in shares]
    if total > 1.0:
        scale = 1.0 / total
        return [s * scale for s in shares]
    if params.redistribute_spare:
        scale = 1.0 / total
        return [s * scale for s in shares]
    return list(shares)
