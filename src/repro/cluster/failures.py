"""Node failure/repair injection.

Real clusters lose nodes; the paper's simulation does not model this,
but a production admission control must coexist with it, so the
library provides it as an extension.  Failure semantics:

* a failed node goes **offline**: every resident task is killed and no
  policy may place work on it until repair;
* losing one task kills the whole (SPMD) job — its sibling tasks on
  other nodes are removed and the job transitions to ``FAILED``;
* queued jobs are unaffected (they were not running anywhere);
* repairs bring the node back empty.

:class:`NodeFailureInjector` drives the process: each node fails after
an exponentially distributed up-time (mean ``mtbf``) and is repaired
after an exponentially distributed down-time (mean ``repair_time``),
all drawn from a named deterministic stream.  The injector routes
failures through the bound policy's ``handle_node_failure`` because
cleaning up multi-node jobs needs cluster-wide bookkeeping.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.cluster import Cluster
from repro.sim.events import Event, EventPriority
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams


class NodeFailureInjector:
    """Schedules random failure/repair cycles for every node."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        policy,
        streams: RngStreams,
        mtbf: float,
        repair_time: float,
        horizon: Optional[float] = None,
    ) -> None:
        if mtbf <= 0 or repair_time <= 0:
            raise ValueError("mtbf and repair_time must be > 0")
        self.sim = sim
        self.cluster = cluster
        self.policy = policy
        self.rng = streams.get("failures")
        self.mtbf = float(mtbf)
        self.repair_time = float(repair_time)
        #: No failures are scheduled past this time (None = no bound);
        #: keeps a drained workload from being kept alive forever.
        self.horizon = horizon
        self.failures_injected = 0
        self.repairs_done = 0

    def start(self) -> int:
        """Arm one failure timer per node; returns how many were armed."""
        armed = 0
        for node in self.cluster:
            if self._schedule_failure(node):
                armed += 1
        return armed

    # -- internals ----------------------------------------------------------
    def _schedule_failure(self, node) -> bool:
        delay = float(self.rng.exponential(self.mtbf))
        when = self.sim.now + delay
        if self.horizon is not None and when > self.horizon:
            return False
        self.sim.schedule_at(
            when,
            lambda ev, n=node: self._fail(n),
            priority=EventPriority.URGENT,
            name=f"fail:node{node.node_id}",
        )
        return True

    def _schedule_repair(self, node) -> None:
        delay = float(self.rng.exponential(self.repair_time))
        self.sim.schedule(
            delay,
            lambda ev, n=node: self._repair(n),
            priority=EventPriority.URGENT,
            name=f"repair:node{node.node_id}",
        )

    def _fail(self, node) -> None:
        if not node.online:  # already down (should not happen)
            return
        self.failures_injected += 1
        self.policy.handle_node_failure(node, self.sim.now)
        self._schedule_repair(node)

    def _repair(self, node) -> None:
        self.repairs_done += 1
        self.policy.handle_node_repair(node, self.sim.now)
        self._schedule_failure(node)
