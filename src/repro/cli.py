"""Command-line interface: regenerate the paper's experiments.

Examples
--------
Regenerate Figure 1 at paper scale (3000 jobs)::

    python -m repro figure1

Quick pass of every figure with a smaller workload::

    python -m repro figures --jobs 600

Single scenario, trace estimates, CSV of the headline metrics::

    python -m repro run --policy librarisk --estimate-mode trace

Workload statistics the paper reports in §4::

    python -m repro trace-stats
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.experiments.ablations import all_ablations
from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import PAPER_POLICIES, all_figures, figure1, figure2, figure3, figure4
from repro.experiments.reporting import metrics_table, render_table, to_csv
from repro.experiments.runner import run_policies, run_scenario
from repro.obs.log import LOG_LEVELS, configure_logging
from repro.obs.session import ObsSession, RunSink
from repro.scheduling.registry import available_policies
from repro.sim.rng import RngStreams
from repro.workload.swf import read_swf_file
from repro.workload.synthetic import SDSCSP2Model, generate_sdsc_like_records
from repro.workload.traces import describe_records, tail_subset

_FIGURE_FNS = {"figure1": figure1, "figure2": figure2, "figure3": figure3, "figure4": figure4}


def _package_version() -> str:
    """Installed distribution version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except Exception:  # PackageNotFoundError or exotic environments
        from repro import __version__

        return __version__


def _base_config(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(
        num_jobs=args.jobs,
        num_nodes=args.nodes,
        seed=args.seed,
        trace_path=args.trace,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=3000, help="number of jobs (default 3000)")
    parser.add_argument("--nodes", type=int, default=128, help="cluster size (default 128)")
    parser.add_argument("--seed", type=int, default=42, help="root random seed")
    parser.add_argument(
        "--trace", type=str, default=None,
        help="path to a real SWF trace (default: calibrated synthetic workload)",
    )


def _progress_printer(verbose: bool):
    if not verbose:
        return None

    def emit(msg: str) -> None:
        print(f"  [run] {msg}", file=sys.stderr)

    return emit


def _add_obs(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by the simulation-running commands."""
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write a JSON-lines metrics/decision log for every run to PATH",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="collect wall-time profiling (events/sec, admission-test time, "
             "heap depth); appends a profile record to the metrics log",
    )
    # Also accepted after the subcommand for convenience; SUPPRESS keeps the
    # subparser from clobbering a value parsed at the top level.
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )


def _obs_sink(args: argparse.Namespace) -> RunSink:
    """A RunSink for multi-run commands (inactive when no flag was given)."""
    metrics_out = getattr(args, "metrics_out", None)
    profile = getattr(args, "profile", False)
    if metrics_out is None and not profile:
        # A pathless, profile-less sink still observes runs; avoid that
        # overhead (and record retention) when nothing was asked for.
        class _NullSink:
            runs = 0
            records: list = []

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return None

        return _NullSink()  # type: ignore[return-value]
    if getattr(args, "processes", 1) > 1:
        print(
            "warning: --metrics-out/--profile only capture in-process runs; "
            "ignoring --processes and running sequentially",
            file=sys.stderr,
        )
        args.processes = 1
    return RunSink(path=metrics_out, profile=profile)


def _report_sink(args: argparse.Namespace, sink) -> None:
    """Tell the user what a multi-run sink captured (if anything)."""
    if getattr(args, "metrics_out", None) and sink.runs:
        print(f"\nwrote metrics for {sink.runs} runs to {args.metrics_out}")
    if getattr(args, "profile", False) and getattr(sink, "sessions", None):
        wall = sum(
            s.profiler.phase_wall.get("run", 0.0)
            for s in sink.sessions if s.profiler is not None
        )
        events = sum(
            s.profiler.run_events for s in sink.sessions if s.profiler is not None
        )
        rate = events / wall if wall > 0 else 0.0
        print(
            f"profile: {sink.runs} runs, {events} kernel events in "
            f"{wall:.2f}s simulation wall time ({rate:,.0f} events/s)"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Yeo & Buyya (ICPP 2006): EDF vs Libra vs LibraRisk",
        epilog=(
            "Static analysis: `repro lint src/` runs the determinism & "
            "concurrency linter (rules DET001-003, CONC001-003, API001); "
            "see docs/STATIC_ANALYSIS.md for the catalog."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}",
    )
    parser.add_argument(
        "--log-level", default="warning", choices=LOG_LEVELS,
        help="logging threshold for the repro.* loggers (default: warning)",
    )
    sub = parser.add_subparsers(dest="command")

    for fid in ("figure1", "figure2", "figure3", "figure4"):
        p = sub.add_parser(fid, help=f"regenerate paper {fid}")
        _add_common(p)
        _add_obs(p)
        p.add_argument("--csv", action="store_true", help="emit CSV instead of tables")
        p.add_argument("--chart", action="store_true",
                       help="render panels as ASCII charts instead of tables")
        p.add_argument("--verbose", action="store_true", help="print per-run progress")
        p.add_argument("--processes", type=int, default=1,
                       help="worker processes for the sweep (1 = sequential)")
        p.add_argument(
            "--policies", nargs="+", default=list(PAPER_POLICIES),
            choices=available_policies(), help="policies to compare",
        )

    p = sub.add_parser("figures", help="regenerate all four figures")
    _add_common(p)
    _add_obs(p)
    p.add_argument("--verbose", action="store_true")

    p = sub.add_parser("run", help="run a single scenario")
    _add_common(p)
    _add_obs(p)
    p.add_argument("--policy", default="librarisk", choices=available_policies())
    p.add_argument("--estimate-mode", default="trace",
                   choices=("accurate", "trace", "inaccuracy"))
    p.add_argument("--inaccuracy", type=float, default=100.0)
    p.add_argument("--arrival-delay-factor", type=float, default=1.0)
    p.add_argument("--high-urgency", type=float, default=20.0,
                   help="%% of high urgency jobs")
    p.add_argument("--deadline-ratio", type=float, default=4.0)
    p.add_argument(
        "--prom-out", type=str, default=None, metavar="PATH",
        help="write the final metrics registry in Prometheus text format",
    )

    p = sub.add_parser("compare", help="all policies on one scenario")
    _add_common(p)
    _add_obs(p)
    p.add_argument("--estimate-mode", default="trace",
                   choices=("accurate", "trace", "inaccuracy"))

    p = sub.add_parser(
        "inspect", help="replay a JSON-lines metrics log written by --metrics-out",
    )
    p.add_argument("log", type=str, help="path to the .jsonl metrics log")
    p.add_argument(
        "--mode", default="report",
        choices=("report", "prom", "decisions", "transitions", "cache", "windows"),
        help="report: human summary; prom: Prometheus text of the final "
             "registry; decisions/transitions: dump those records; "
             "cache: admission fast-path counters from profile records; "
             "windows: trailing-window loss ratio and rejection reasons "
             "per policy at the last decision instant",
    )
    p.add_argument("--policy", type=str, default=None,
                   help="filter decision output to one policy")
    p.add_argument("--window", type=float, default=3600.0, metavar="SECONDS",
                   help="trailing-window size for --mode windows "
                        "(simulated seconds, default 3600)")
    p.add_argument(
        "--cache-stats", action="store_true",
        help="shorthand for --mode cache: admission fast-path counters "
             "(suitability cache hits, projections avoided, tombstones)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit decisions/transitions as canonical JSON lines "
             "instead of aligned text",
    )

    p = sub.add_parser(
        "bench",
        help="run the tracked admission benchmarks (batch + engine submit path)",
    )
    _add_common(p)
    p.add_argument("--policies", nargs="+", default=None,
                   choices=available_policies(),
                   help="policies to benchmark (default: edf libra librarisk)")
    p.add_argument("--repeats", type=int, default=1,
                   help="repetitions per measurement; best run is kept")
    p.add_argument("--out", type=str, default=None, metavar="PATH",
                   help="benchmark file to update (default: BENCH_admission.json "
                        "in the current directory)")
    p.add_argument("--label", type=str, default=None,
                   help="section label in the benchmark file (default: derived "
                        "from the scale, e.g. 'paper' for 3000x128)")
    p.add_argument("--record-baseline", action="store_true",
                   help="store the run as the section's baseline instead of "
                        "its current entry (do this before optimising)")
    p.add_argument("--check", action="store_true",
                   help="do not write the file; compare the fresh run against "
                        "the committed entry and fail on >--max-regression")
    p.add_argument("--max-regression", type=float, default=1.5,
                   help="allowed slowdown factor for --check (default 1.5)")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="benchmark sharded submit throughput at 1..N worker "
                        "processes (records BENCH_shard.json)")
    p.add_argument("--min-scaling", type=float, default=2.0,
                   help="with --shards --check: minimum accepted throughput "
                        "ratio of the largest shard count over 1 shard "
                        "(default 2.0)")
    p.add_argument("--obs", action="store_true",
                   help="measure observability instrumentation overhead "
                        "instead (tracing+windows on vs off; tracked in "
                        "BENCH_obs.json, --check gates the on/off delta)")
    p.add_argument("--max-overhead", type=float, default=5.0,
                   help="allowed instrumentation overhead %% for "
                        "--obs --check (default 5)")
    p.add_argument("--verbose", action="store_true", help="print progress")

    p = sub.add_parser("trace-stats", help="workload statistics (paper §4)")
    _add_common(p)

    p = sub.add_parser("ablations", help="run the design-choice ablations")
    _add_common(p)

    p = sub.add_parser("validate", help="check the paper's §5 claims on regenerated figures")
    _add_common(p)
    p.add_argument("--figures", nargs="+", default=["1", "2", "3", "4"],
                   choices=["1", "2", "3", "4"], help="figures to regenerate and validate")
    p.add_argument("--verbose", action="store_true")

    p = sub.add_parser("replicate", help="multi-seed comparison with confidence intervals")
    _add_common(p)
    p.add_argument("--estimate-mode", default="trace",
                   choices=("accurate", "trace", "inaccuracy"))
    p.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3, 4, 5])
    p.add_argument("--policies", nargs="+", default=["edf", "libra", "librarisk"],
                   choices=available_policies())
    p.add_argument("--metric", default="pct_deadlines_fulfilled")

    p = sub.add_parser("sensitivity", help="one-factor-at-a-time sensitivity analysis")
    _add_common(p)
    p.add_argument("--policy", default="librarisk", choices=available_policies())
    p.add_argument("--metric", default="pct_deadlines_fulfilled")

    p = sub.add_parser("robustness", help="deadline fulfilment under node failures")
    _add_common(p)

    p = sub.add_parser(
        "serve", help="run the online admission-control HTTP service",
    )
    p.add_argument("--policy", default="librarisk", choices=available_policies())
    p.add_argument("--nodes", type=int, default=128, help="cluster size (default 128)")
    p.add_argument("--rating", type=float, default=168.0,
                   help="per-node MIPS rating (default 168, SDSC SP2)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8331,
                   help="listen port (0 = pick an ephemeral port)")
    p.add_argument("--max-request-bytes", type=int, default=64 * 1024,
                   help="reject request bodies larger than this (413)")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="shed requests beyond this many in flight (503)")
    p.add_argument("--live", action="store_true",
                   help="wall-clock mode: simulated time tracks real time "
                        "(default: virtual, workload-driven time)")
    p.add_argument("--speedup", type=float, default=1.0,
                   help="simulated seconds per wall second in --live mode")
    p.add_argument("--restore", type=str, default=None, metavar="PATH",
                   help="resume from an engine checkpoint written by "
                        "`repro serve --checkpoint-on-exit` or the "
                        "checkpoint RPC")
    p.add_argument("--checkpoint-on-exit", type=str, default=None, metavar="PATH",
                   help="snapshot engine state to PATH on graceful shutdown")
    p.add_argument("--metrics-out", type=str, default=None, metavar="PATH",
                   help="write the engine's decision/metrics records to PATH "
                        "on shutdown")
    p.add_argument("--wal", type=str, default=None, metavar="PATH",
                   help="write-ahead log: durably append every mutating "
                        "request to PATH before applying it; if PATH already "
                        "exists its records are replayed first (crash "
                        "recovery), on top of --restore when given")
    p.add_argument("--wal-fsync", default="always",
                   choices=("always", "batch", "none"),
                   help="WAL durability: fsync every append (default), every "
                        "few appends, or never (tests only)")
    p.add_argument("--wal-compact-every", type=int, default=0, metavar="N",
                   help="auto-compact the WAL whenever it retains N records "
                        "past the last compaction point: snapshot the engine "
                        "and truncate the log into an archive segment "
                        "(default 0: never compact)")
    p.add_argument("--faults", type=str, default=None, metavar="SPEC",
                   help="inject faults, e.g. 'drop=0.1,error=0.05,seed=7' or "
                        "'crash=wal.after_append:3,mode=exit' (chaos testing)")
    p.add_argument("--retry-after", type=float, default=1.0,
                   help="backoff hint (seconds) attached to overloaded/"
                        "shutting-down responses (default 1.0)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="partition the cluster across N worker processes "
                        "behind a routing front-end (default 1: a single "
                        "in-process engine); workers bind --port+1..+N")
    p.add_argument("--park", type=int, default=0, metavar="N",
                   help="with --shards: park up to N submits per down shard "
                        "in the router and flush them in arrival order when "
                        "the shard recovers (default 0: refuse with 503)")
    p.add_argument("--shard-id", type=int, default=0, metavar="K",
                   help="worker mode: serve shard K of --shard-count "
                        "(normally set by the --shards supervisor, not by hand)")
    p.add_argument("--shard-count", type=int, default=1, metavar="N",
                   help="worker mode: total shard count this worker belongs to")
    p.add_argument("--window", type=float, default=None, metavar="SECONDS",
                   help="trailing window for the windowed telemetry block "
                        "in /v1/stats and /metrics (simulated seconds, "
                        "default 3600)")
    p.add_argument("--no-telemetry", action="store_true",
                   help="disable deterministic trace-id minting and "
                        "windowed telemetry (micro-benchmarks only)")

    p = sub.add_parser(
        "recover",
        help="replay a write-ahead log (on top of an optional checkpoint) "
             "and report/compact the recovered engine state",
    )
    p.add_argument("wal", type=str, help="path to the write-ahead log")
    p.add_argument("--checkpoint", type=str, default=None, metavar="PATH",
                   help="start from this engine checkpoint and replay only "
                        "the WAL records after it")
    p.add_argument("--out", type=str, default=None, metavar="PATH",
                   help="write the recovered state as a compacted checkpoint "
                        "to PATH (atomic, checksummed)")

    p = sub.add_parser(
        "scrub",
        help="verify WAL frame checksums, LSN chain continuity and "
             "checkpoint integrity across a (possibly sharded) fleet",
    )
    p.add_argument("wal", type=str,
                   help="WAL path (the base path with --shards > 1)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="scrub the N shard-namespaced WALs derived from the "
                        "base path (default 1: scrub the path as-is)")
    p.add_argument("--checkpoint", type=str, action="append", default=None,
                   metavar="PATH",
                   help="also verify this checkpoint's content checksum "
                        "(repeatable; segment-referenced checkpoints are "
                        "always verified)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report as canonical JSON")

    p = sub.add_parser(
        "replay",
        help="stream a scenario's job trace through the online engine "
             "(in-process, or against a running server with --url)",
    )
    _add_common(p)
    _add_obs(p)
    p.add_argument("--policy", default="librarisk", choices=available_policies(),
                   help="policy for the in-process engine (ignored with --url)")
    p.add_argument("--estimate-mode", default="trace",
                   choices=("accurate", "trace", "inaccuracy"))
    p.add_argument("--url", type=str, default=None, metavar="URL",
                   help="replay over HTTP against a running `repro serve` "
                        "instead of in-process")
    p.add_argument("--speedup", type=float, default=None,
                   help="trace seconds per wall second in --url mode "
                        "(default: as fast as possible)")
    p.add_argument("--workers", type=int, default=1,
                   help="concurrent senders in --url mode (1 = ordered, "
                        "safe for virtual-clock servers)")
    p.add_argument("--drain", action="store_true",
                   help="in --url mode, send a drain request after the "
                        "stream and print the final metrics")
    p.add_argument("--batch", type=int, default=1, metavar="N",
                   help="jobs per request with --url: N > 1 packs consecutive "
                        "jobs into batch-submit frames (N=1: plain submits, "
                        "the pre-batch wire format)")
    p.add_argument("--retries", type=int, default=1,
                   help="in --url mode, attempts per request (>1 enables the "
                        "retrying client with exponential backoff)")
    p.add_argument("--latency-buckets", type=float, nargs="+", default=None,
                   metavar="S",
                   help="in --url mode, latency histogram bucket bounds in "
                        "seconds (strictly ascending; default 1ms..10s)")

    p = sub.add_parser(
        "trace",
        help="reconstruct one job's end-to-end lifecycle trace "
             "(deterministic span tree with per-stage latency)",
    )
    p.add_argument("job_id", type=int, help="job id to trace")
    p.add_argument("--url", type=str, default=None, metavar="URL",
                   help="query a running `repro serve` over HTTP")
    p.add_argument("--wal", type=str, default=None, metavar="PATH",
                   help="offline: rebuild the engine by replaying this "
                        "write-ahead log")
    p.add_argument("--checkpoint", type=str, default=None, metavar="PATH",
                   help="offline: engine checkpoint to restore "
                        "(alone, or replayed on top of with --wal)")
    p.add_argument("--json", action="store_true",
                   help="canonical JSON instead of the ASCII span tree")

    p = sub.add_parser(
        "top",
        help="live operator console: polls /healthz, /v1/stats and /metrics",
    )
    p.add_argument("--url", type=str, default="http://127.0.0.1:8331",
                   metavar="URL",
                   help="service base URL (default: the `repro serve` "
                        "default port)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between polls (default 2)")
    p.add_argument("--once", action="store_true",
                   help="poll once and exit (no clear-screen redraw)")
    p.add_argument("--json", action="store_true",
                   help="print the deterministic snapshot subset as one "
                        "canonical JSON line per poll")
    p.add_argument("--no-color", action="store_true",
                   help="disable ANSI colors")

    sub.add_parser("policies", help="list available admission controls")

    from repro.analysis.lint import cli as lint_cli

    p = sub.add_parser(
        "lint",
        help="determinism & concurrency static analysis (AST rules)",
        description=lint_cli.DESCRIPTION,
        epilog=lint_cli.EPILOG,
    )
    lint_cli.add_arguments(p)

    from repro.analysis.flow import cli as flow_cli

    p = sub.add_parser(
        "flowcheck",
        help="whole-program determinism flow analysis (FLOW001-004)",
        description=flow_cli.DESCRIPTION,
        epilog=flow_cli.EPILOG,
    )
    flow_cli.add_arguments(p)
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: boot the admission service and block until signalled."""
    import signal
    import threading

    from repro.service import checkpoint as checkpoint_mod
    from repro.service import wal as wal_mod
    from repro.service.clock import WallClock
    from repro.service.engine import AdmissionEngine, EngineConfig
    from repro.service.faults import FaultInjector, FaultSpec
    from repro.service.server import AdmissionService, ServiceServer

    if args.shards < 1 or args.shard_count < 1:
        print("repro serve: --shards/--shard-count must be >= 1", file=sys.stderr)
        return 2
    if args.shards > 1 and args.shard_count > 1:
        print("repro serve: --shards (supervisor mode) and --shard-count "
              "(worker mode) are mutually exclusive", file=sys.stderr)
        return 2
    if args.shards > 1:
        return _cmd_serve_sharded(args)
    if not 0 <= args.shard_id < args.shard_count:
        print("repro serve: --shard-id must be in [0, --shard-count)",
              file=sys.stderr)
        return 2

    faults = None
    if args.faults is not None:
        try:
            faults = FaultInjector(FaultSpec.parse(args.faults))
        except ValueError as exc:
            print(f"repro serve: bad --faults spec: {exc}", file=sys.stderr)
            return 2

    session = ObsSession() if args.metrics_out is not None else None
    recovery = None
    if args.wal is not None:
        # A crash during the very first header write leaves a torn
        # header-only file nothing was ever acked from; reset it here
        # so neither recovery nor the appender trips over it.
        try:
            wal_mod.discard_torn_header(args.wal)
        except (OSError, wal_mod.WalError) as exc:
            print(f"repro serve: cannot read WAL {args.wal}: {exc}",
                  file=sys.stderr)
            return 1
    wal_has_records = (
        args.wal is not None
        and os.path.exists(args.wal)
        and os.path.getsize(args.wal) > 0
    )
    if wal_has_records:
        # Crash recovery: replay the existing log (on top of --restore,
        # when given) before accepting traffic against it again.
        try:
            engine, recovery = wal_mod.recover(
                args.wal, checkpoint_path=args.restore, obs=session,
            )
        except (OSError, wal_mod.WalError, checkpoint_mod.CheckpointError) as exc:
            print(f"repro serve: cannot recover from {args.wal}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"recovered from {args.wal}: {recovery}")
    elif args.restore is not None:
        try:
            engine = checkpoint_mod.load(args.restore, obs=session)
        except (OSError, checkpoint_mod.CheckpointError) as exc:
            print(f"repro serve: cannot restore {args.restore}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"restored engine from {args.restore}: policy={engine.policy.name} "
              f"t={engine.now:.6g}s, {len(engine.rms.jobs)} jobs known")
    else:
        config = EngineConfig(policy=args.policy, num_nodes=args.nodes,
                              rating=args.rating)
        if args.shard_count > 1:
            # Worker mode: --nodes names the *whole* cluster; this process
            # serves only its deterministic slice of it.
            from repro.service.sharding.partition import plan_shards

            config = plan_shards(config, args.shard_count)[args.shard_id]
        engine = AdmissionEngine(config, obs=session)
    if args.live:
        # The wall clock starts from the engine's (possibly restored)
        # simulated time, so live mode resumes where the checkpoint left off.
        engine.clock = WallClock(speedup=args.speedup, start_time=engine.now)
    if args.no_telemetry:
        engine.telemetry = False
        engine.window = None
    elif args.window is not None:
        try:
            engine.set_window(args.window)
        except ValueError as exc:
            print(f"repro serve: bad --window: {exc}", file=sys.stderr)
            return 2

    wal = None
    if args.wal is not None:
        try:
            wal = wal_mod.WriteAheadLog.open(
                args.wal, config=engine.config.as_dict(), fsync=args.wal_fsync,
            )
        except (OSError, wal_mod.WalError) as exc:
            print(f"repro serve: cannot open WAL {args.wal}: {exc}",
                  file=sys.stderr)
            return 1

    if args.wal_compact_every < 0:
        print("repro serve: --wal-compact-every must be >= 0", file=sys.stderr)
        return 2
    if args.wal_compact_every and wal is None:
        print("repro serve: --wal-compact-every requires --wal", file=sys.stderr)
        return 2
    service = AdmissionService(
        engine,
        max_request_bytes=args.max_request_bytes,
        max_inflight=args.max_inflight,
        wal=wal,
        faults=faults,
        retry_after=args.retry_after,
        wal_compact_every=args.wal_compact_every,
    )
    if recovery is not None:
        service.note_recovery(recovery)
    server = ServiceServer(
        service, host=args.host, port=args.port,
        checkpoint_on_exit=args.checkpoint_on_exit,
    )

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())

    server.start()
    mode = f"live (speedup {args.speedup:g})" if args.live else "virtual clock"
    shard_note = ""
    if engine.config.shard_count > 1:
        shard_note = (f", shard {engine.config.shard_id} of "
                      f"{engine.config.shard_count}")
    print(f"serving {engine.policy.name} on {server.url} "
          f"({len(engine.cluster)} nodes, {mode}{shard_note}); Ctrl-C to stop",
          flush=True)
    stop.wait()
    print("\nshutting down...", flush=True)
    clean = server.stop()
    if wal is not None:
        print(f"WAL {args.wal}: {wal.appended} records appended "
              f"({wal.bytes_written} bytes, {wal.syncs} fsyncs)")
    if session is not None:
        from repro.obs.exporters import write_jsonl

        session.finalize(metrics=engine.metrics(), sim=engine.sim)
        lines = write_jsonl(args.metrics_out, session.records)
        print(f"wrote {lines} records to {args.metrics_out}")
    if args.checkpoint_on_exit is not None:
        print(f"checkpoint written to {args.checkpoint_on_exit}")
    if not clean:
        print("repro serve: worker thread failed to stop within its grace "
              "period; state may not be fully flushed", file=sys.stderr)
        return 1
    return 0


def shard_worker_command(args: argparse.Namespace, shard_id: int,
                         port: int) -> list:
    """The ``repro serve`` worker command line for one shard.

    Derived entirely from the supervisor's own flags, so a dead worker
    can be respawned with the identical command — including the shard's
    namespaced WAL, which is what makes the respawn *recover* rather
    than restart fresh.
    """
    from repro.service.sharding.paths import shard_path

    n = args.shards
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--policy", args.policy, "--nodes", str(args.nodes),
        "--rating", str(args.rating), "--host", args.host,
        "--port", str(port),
        "--shard-id", str(shard_id), "--shard-count", str(n),
        "--max-request-bytes", str(args.max_request_bytes),
        "--max-inflight", str(args.max_inflight),
        "--retry-after", str(args.retry_after),
        "--wal-fsync", args.wal_fsync,
    ]
    if args.live:
        cmd += ["--live", "--speedup", str(args.speedup)]
    if args.wal is not None:
        cmd += ["--wal", shard_path(args.wal, shard_id, n)]
        if args.wal_compact_every:
            cmd += ["--wal-compact-every", str(args.wal_compact_every)]
    if args.restore is not None:
        cmd += ["--restore", shard_path(args.restore, shard_id, n)]
    if args.checkpoint_on_exit is not None:
        cmd += ["--checkpoint-on-exit",
                shard_path(args.checkpoint_on_exit, shard_id, n)]
    if args.no_telemetry:
        cmd += ["--no-telemetry"]
    elif args.window is not None:
        cmd += ["--window", str(args.window)]
    if args.faults is not None:
        cmd += ["--faults", args.faults]
    return cmd


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    """``repro serve --shards N``: supervisor + router over N workers."""
    import signal
    import threading

    from repro.service.engine import EngineConfig
    from repro.service.sharding.paths import shard_port
    from repro.service.sharding.router import RouterServer, ShardRouter
    from repro.service.sharding.supervisor import (
        ShardSupervisor,
        WorkerSpec,
        free_ports,
    )

    base = EngineConfig(policy=args.policy, num_nodes=args.nodes,
                        rating=args.rating)
    if args.nodes < args.shards:
        print(f"repro serve: cannot split {args.nodes} nodes into "
              f"{args.shards} shards", file=sys.stderr)
        return 2
    if args.port == 0:
        ports = free_ports(args.shards)
    else:
        ports = [shard_port(args.port, i) for i in range(args.shards)]
    specs = [
        WorkerSpec(
            shard_id=i,
            cmd=shard_worker_command(args, i, ports[i]),
            url=f"http://{args.host}:{ports[i]}",
        )
        for i in range(args.shards)
    ]
    if args.park < 0:
        print("repro serve: --park must be >= 0", file=sys.stderr)
        return 2
    router = ShardRouter(
        base, [spec.url for spec in specs],
        max_request_bytes=args.max_request_bytes,
        max_parked=args.park,
    )
    supervisor = ShardSupervisor(specs)
    supervisor.router = router
    try:
        supervisor.start(wait_healthy=True)
    except (TimeoutError, RuntimeError, OSError) as exc:
        print(f"repro serve: shard workers failed to start: {exc}",
              file=sys.stderr)
        supervisor.stop()
        return 1
    server = RouterServer(router, host=args.host, port=args.port)

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())

    server.start()
    pids = supervisor.pids()
    print(f"routing {args.policy} on {server.url} across {args.shards} "
          f"shard workers ({args.nodes} nodes total); worker pids "
          + ", ".join(f"{i}:{pids.get(i, '?')}" for i in range(args.shards))
          + "; Ctrl-C to stop", flush=True)
    stop.wait()
    print("\nshutting down router and shard workers...", flush=True)
    clean = server.stop()
    supervisor.stop()
    restarts = supervisor.restart_counts()
    total_restarts = sum(restarts.values())
    if total_restarts:
        print("worker restarts: " + ", ".join(
            f"shard {i}: {n}" for i, n in sorted(restarts.items()) if n
        ))
    return 0 if clean else 1


def _cmd_recover(args: argparse.Namespace) -> int:
    """``repro recover``: offline WAL replay, report, optional compaction."""
    from repro.service import checkpoint as checkpoint_mod
    from repro.service import wal as wal_mod

    try:
        engine, report = wal_mod.recover(args.wal, checkpoint_path=args.checkpoint)
    except (OSError, wal_mod.WalError, checkpoint_mod.CheckpointError) as exc:
        print(f"repro recover: {exc}", file=sys.stderr)
        return 1
    print(report)
    print(f"engine: policy={engine.policy.name} t={engine.now:.6g}s "
          f"wal_lsn={engine.wal_lsn}")
    for key, value in sorted(engine.stats().items()):
        print(f"  {key:<24s} {value}")
    if args.out is not None:
        checkpoint_mod.save(engine, args.out)
        print(f"wrote compacted checkpoint to {args.out} "
              f"(restart with: repro serve --restore {args.out} --wal {args.wal})")
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    """``repro scrub``: offline fleet integrity check, exit code = verdict."""
    import json

    from repro.service import scrub as scrub_mod

    if args.shards < 1:
        print("repro scrub: --shards must be >= 1", file=sys.stderr)
        return scrub_mod.EXIT_IO
    report = scrub_mod.scrub_fleet(
        args.wal, shards=args.shards, checkpoints=args.checkpoint,
    )
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True,
                         separators=(",", ":"), ensure_ascii=False))
    else:
        print(report)
        for finding in report.findings:
            print(f"  [{finding.kind}] {finding.path}: {finding.detail}")
    return report.exit_code


def _cmd_replay(args: argparse.Namespace) -> int:
    """``repro replay``: stream a trace through an engine or a server."""
    from repro.experiments.runner import build_scenario_jobs

    config = _base_config(args).replace(
        policy=args.policy, estimate_mode=args.estimate_mode,
    )
    jobs = build_scenario_jobs(config)

    if args.url is not None:
        from repro.service.client import RetryPolicy, RetryingClient
        from repro.service.loadgen import LoadGenerator, ServiceClient

        if args.retries > 1:
            client: ServiceClient = RetryingClient(
                args.url,
                policy=RetryPolicy(max_attempts=args.retries),
                seed=args.seed,
            )
        else:
            client = ServiceClient(args.url)
        if not client.healthy():
            print(f"repro replay: no healthy service at {args.url}", file=sys.stderr)
            return 1
        speedup = args.speedup if args.speedup is not None else 1e12
        try:
            generator = LoadGenerator(
                client, jobs, speedup=speedup, workers=args.workers,
                latency_buckets=args.latency_buckets, batch=args.batch,
            )
        except ValueError as exc:
            print(f"repro replay: bad --latency-buckets/--batch: {exc}",
                  file=sys.stderr)
            return 2
        report = generator.run()
        print(report)
        for outcome, count in sorted(report.outcomes.items()):
            print(f"  {outcome:<12s} {count}")
        if isinstance(client, RetryingClient):
            print("client: " + ", ".join(
                f"{k}={v}" for k, v in sorted(client.client_stats.items())
            ))
        status, stats = client.stats()
        if status != 200:
            print(f"repro replay: stats request failed with HTTP {status}",
                  file=sys.stderr)
            return 1
        print("server stats: " + ", ".join(
            f"{k}={v}" for k, v in sorted(stats["stats"].items())
        ))
        if args.drain:
            status, drained = client.drain()
            if status != 200:
                print(f"repro replay: drain failed with HTTP {status}",
                      file=sys.stderr)
                return 1
            rows = sorted(drained["metrics"].items())
            print(render_table(["metric", "value"], rows))
        return 0

    from repro.service.replay import replay_scenario

    session = None
    if args.metrics_out is not None or args.profile:
        session = ObsSession(scenario=config, profile=args.profile)
    engine, report = replay_scenario(config, obs=session, jobs=jobs)
    print(report)
    rows = sorted(report.metrics.as_dict().items())
    print(render_table(["metric", "value"], rows))
    if session is not None and args.metrics_out is not None:
        from repro.obs.exporters import write_jsonl

        lines = write_jsonl(args.metrics_out, session.records)
        print(f"wrote {lines} records to {args.metrics_out}")
    if session is not None and session.profiler is not None:
        print()
        print(session.profiler.render())
    return 0


def _cmd_bench_obs(args: argparse.Namespace) -> int:
    """``repro bench --obs``: instrumentation overhead, tracked + gated."""
    from repro.experiments import bench as bench_mod

    label = args.label or bench_mod.bench_label(args.jobs, args.nodes)
    out_path = args.out or bench_mod.BENCH_OBS_FILENAME
    policy = args.policies[0] if args.policies else "librarisk"
    section = bench_mod.run_bench_obs(
        jobs=args.jobs, nodes=args.nodes, seed=args.seed, policy=policy,
        repeats=max(args.repeats, 3), progress=_progress_printer(args.verbose),
    )
    on, off = section["telemetry_on"], section["telemetry_off"]
    print(
        f"{policy}: telemetry on {on['jobs_per_sec']:>9.1f} jobs/s, "
        f"off {off['jobs_per_sec']:>9.1f} jobs/s "
        f"-> overhead {section['overhead_pct']:+.2f}%"
    )
    if args.check:
        failures = bench_mod.check_obs_overhead(
            section, max_overhead_pct=args.max_overhead
        )
        if failures:
            for failure in failures:
                print(f"repro bench: OVERHEAD: {failure}", file=sys.stderr)
            return 1
        print(f"observability overhead check passed "
              f"(within {args.max_overhead:g}% of the uninstrumented path)")
        return 0
    bench_mod.update_bench_file(
        out_path, label, section, record_baseline=args.record_baseline
    )
    print(f"\nwrote {'baseline' if args.record_baseline else 'current'} "
          f"observability numbers for label {label!r} to {out_path}")
    return 0


def _cmd_bench_shards(args: argparse.Namespace) -> int:
    """``repro bench --shards N``: fleet ingest scaling, tracked + gated."""
    from repro.experiments import bench as bench_mod

    if args.shards < 1:
        print("repro bench: --shards must be >= 1", file=sys.stderr)
        return 2
    label = args.label or bench_mod.bench_label(args.jobs, args.nodes)
    out_path = args.out or bench_mod.BENCH_SHARD_FILENAME
    policy = args.policies[0] if args.policies else "librarisk"
    counts = sorted({1, *(
        c for c in (2, args.shards) if 1 < c <= args.shards
    )})
    section = bench_mod.run_bench_shard(
        jobs=args.jobs, nodes=args.nodes, seed=args.seed, policy=policy,
        shard_counts=counts, progress=_progress_printer(args.verbose),
    )
    for count in counts:
        record = section["shards"][str(count)]
        ratio = section["scaling"].get(str(count))
        suffix = f"  ({ratio:.2f}x vs 1 shard)" if ratio is not None else ""
        print(
            f"{policy}: {count} shard(s) {record['jobs_per_sec']:>9.1f} jobs/s "
            f"({record['errors']} errors){suffix}"
        )
    if args.check:
        failures = bench_mod.check_shard_scaling(
            section, min_scaling=args.min_scaling
        )
        if failures:
            for failure in failures:
                print(f"repro bench: SCALING: {failure}", file=sys.stderr)
            return 1
        print(f"shard scaling check passed (largest fleet is >= "
              f"{args.min_scaling:g}x a single shard)")
        return 0
    bench_mod.update_bench_file(
        out_path, label, section, record_baseline=args.record_baseline
    )
    print(f"\nwrote {'baseline' if args.record_baseline else 'current'} "
          f"shard-scaling numbers for label {label!r} to {out_path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: measure and track admission throughput."""
    from repro.experiments import bench as bench_mod

    if args.obs and args.shards:
        print("repro bench: --obs and --shards are separate benchmarks; "
              "pick one", file=sys.stderr)
        return 2
    if args.obs:
        return _cmd_bench_obs(args)
    if args.shards:
        return _cmd_bench_shards(args)

    policies = args.policies if args.policies else list(bench_mod.DEFAULT_POLICIES)
    label = args.label or bench_mod.bench_label(args.jobs, args.nodes)
    out_path = args.out or bench_mod.BENCH_FILENAME
    progress = _progress_printer(args.verbose)

    section = bench_mod.run_bench(
        jobs=args.jobs, nodes=args.nodes, seed=args.seed,
        policies=policies, repeats=args.repeats, progress=progress,
    )
    for policy in policies:
        body = section["policies"][policy]
        eng, scen = body["engine"], body["scenario"]
        print(
            f"{policy:<10s} engine {eng['jobs_per_sec']:>9.1f} jobs/s "
            f"(p99 {eng['latency_us']['p99']:.0f} us)  "
            f"batch {scen['jobs_per_sec']:>9.1f} jobs/s "
            f"({scen['events_per_sec']:,} events/s)"
        )

    if args.check:
        doc = bench_mod.load_bench_file(out_path)
        failures = bench_mod.check_regression(
            doc, label, section, max_regression=args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"repro bench: REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"perf check passed (within {args.max_regression:g}x of "
              f"committed {label!r} numbers)")
        return 0

    doc = bench_mod.update_bench_file(
        out_path, label, section, record_baseline=args.record_baseline
    )
    slot = doc["benchmarks"][label]
    print(f"\nwrote {'baseline' if args.record_baseline else 'current'} "
          f"numbers for label {label!r} to {out_path}")
    if "baseline" in slot and "current" in slot:
        for policy, metric, base, cur, ratio in bench_mod.compare(
            slot["baseline"], slot["current"]
        ):
            print(f"  {policy:<10s} {metric:<22s} {base:>9.1f} -> {cur:>9.1f} "
                  f"({ratio:.2f}x)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: one job's deterministic lifecycle span tree.

    Three sources, one byte-identical answer: a live server (``--url``),
    a replayed write-ahead log (``--wal``), or a restored checkpoint
    (``--checkpoint``) — the trace ids are minted from the engine
    config and submit sequence, not from wall clocks or process state.
    """
    from repro.obs.tracing import render_trace
    from repro.service import checkpoint as checkpoint_mod
    from repro.service import wal as wal_mod

    given = [s for s in (args.url, args.wal, args.checkpoint) if s is not None]
    if not given:
        print("repro trace: pass --url URL (live), --wal PATH and/or "
              "--checkpoint PATH (offline)", file=sys.stderr)
        return 2
    if args.url is not None:
        if args.wal is not None or args.checkpoint is not None:
            print("repro trace: --url cannot be combined with --wal/"
                  "--checkpoint", file=sys.stderr)
            return 2
        from repro.service.loadgen import ServiceClient

        status, payload = ServiceClient(args.url).trace(args.job_id)
        if status != 200:
            error = payload.get("error", {}) if isinstance(payload, dict) else {}
            detail = error.get("message") or f"HTTP {status}"
            print(f"repro trace: {detail}", file=sys.stderr)
            return 1
        trace = payload["trace"]
    else:
        try:
            if args.wal is not None:
                engine, _ = wal_mod.recover(
                    args.wal, checkpoint_path=args.checkpoint
                )
            else:
                engine = checkpoint_mod.load(args.checkpoint)
        except (OSError, wal_mod.WalError, checkpoint_mod.CheckpointError) as exc:
            print(f"repro trace: {exc}", file=sys.stderr)
            return 1
        try:
            trace = engine.trace(args.job_id)
        except KeyError:
            print(f"repro trace: no decided job with id {args.job_id}",
                  file=sys.stderr)
            return 1
    print(render_trace(trace, json_out=args.json))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: poll the service and render the operator console."""
    from repro.obs.console import run_top

    color = not args.no_color and not args.json and sys.stdout.isatty()
    return run_top(
        args.url, interval=args.interval, once=args.once,
        json_out=args.json, color=color,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # A downstream reader closed the pipe (`repro inspect ... | head`).
        # Point stdout at devnull so the interpreter's shutdown flush does
        # not raise again, and exit with the conventional SIGPIPE status.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


def _dispatch(argv: Optional[Sequence[str]]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command is None:
        # `repro` with no subcommand: print usage rather than erroring out.
        parser.print_help()
        return 2

    configure_logging(args.log_level)

    if args.command == "policies":
        for name in available_policies():
            print(name)
        return 0

    if args.command == "lint":
        from repro.analysis.lint import cli as lint_cli

        return lint_cli.run(args, parser)

    if args.command == "flowcheck":
        from repro.analysis.flow import cli as flow_cli

        return flow_cli.run(args, parser)

    if args.command == "inspect":
        from repro.obs.inspect import inspect_log

        mode = "cache" if args.cache_stats else args.mode
        try:
            print(inspect_log(args.log, mode=mode, policy=args.policy,
                              json_output=args.json, window=args.window))
        except BrokenPipeError:
            raise  # downstream reader closed the pipe; handled in main()
        except OSError as exc:
            print(f"repro inspect: cannot read {args.log}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"repro inspect: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "scrub":
        return _cmd_scrub(args)

    if args.command == "recover":
        return _cmd_recover(args)

    if args.command == "replay":
        return _cmd_replay(args)

    if args.command == "bench":
        return _cmd_bench(args)

    if args.command == "trace":
        return _cmd_trace(args)

    if args.command == "top":
        return _cmd_top(args)

    if args.command in _FIGURE_FNS:
        base = _base_config(args)
        with _obs_sink(args) as sink:
            fig = _FIGURE_FNS[args.command](
                base=base, policies=args.policies,
                progress=_progress_printer(args.verbose), processes=args.processes,
            )
        if args.csv:
            for panel in fig.panels:
                print(f"# panel ({panel.label}) {panel.title}")
                print(to_csv(panel.x_label, panel.x_values, panel.series))
        elif args.chart:
            from repro.analysis.asciichart import panel_chart

            print(f"=== Figure {fig.figure_id}: {fig.title} ===")
            for panel in fig.panels:
                print()
                print(panel_chart(panel))
        else:
            print(fig.render())
        _report_sink(args, sink)
        return 0

    if args.command == "figures":
        base = _base_config(args)
        with _obs_sink(args) as sink:
            for fig in all_figures(base=base, progress=_progress_printer(args.verbose)).values():
                print(fig.render())
                print()
        _report_sink(args, sink)
        return 0

    if args.command == "run":
        config = _base_config(args).replace(
            policy=args.policy,
            estimate_mode=args.estimate_mode,
            inaccuracy_pct=args.inaccuracy,
            arrival_delay_factor=args.arrival_delay_factor,
            high_urgency_fraction=args.high_urgency / 100.0,
            deadline_ratio=args.deadline_ratio,
        )
        session = None
        if args.metrics_out is not None or args.profile or args.prom_out is not None:
            session = ObsSession(scenario=config, profile=args.profile)
        result = run_scenario(config, obs=session)
        rows = sorted(result.metrics.as_dict().items())
        print(render_table(["metric", "value"], rows))
        print(f"\nsimulated horizon: {result.horizon / 86400.0:.1f} days, "
              f"{result.events} events in {result.elapsed:.2f}s wall-clock")
        if session is not None:
            from repro.obs.exporters import prometheus_text, write_jsonl

            if args.metrics_out is not None:
                lines = write_jsonl(args.metrics_out, session.records)
                print(f"wrote {lines} metric records to {args.metrics_out}")
            if args.prom_out is not None:
                with open(args.prom_out, "w", encoding="utf-8") as fp:
                    fp.write(prometheus_text(session.registry))
                print(f"wrote Prometheus metrics to {args.prom_out}")
            if session.profiler is not None:
                print()
                print(session.profiler.render())
        return 0

    if args.command == "compare":
        base = _base_config(args).replace(estimate_mode=args.estimate_mode)
        with _obs_sink(args) as sink:
            results = run_policies(base, available_policies())
        print(metrics_table(
            results,
            ("pct_deadlines_fulfilled", "avg_slowdown", "acceptance_pct", "completed_late"),
        ))
        _report_sink(args, sink)
        return 0

    if args.command == "trace-stats":
        if args.trace is not None:
            _, records = read_swf_file(args.trace)
            records = tail_subset(records, args.jobs)
            source = args.trace
        else:
            records = generate_sdsc_like_records(
                SDSCSP2Model(num_jobs=args.jobs), RngStreams(seed=args.seed)
            )
            source = f"synthetic SDSC-SP2-like (seed={args.seed})"
        stats = describe_records(records)
        print(f"workload: {source}")
        print(render_table(["statistic", "value"], sorted(stats.items()), float_fmt="{:.3f}"))
        return 0

    if args.command == "ablations":
        base = _base_config(args)
        for ab in all_ablations(base).values():
            print(ab.render())
            print()
        return 0

    if args.command == "validate":
        from repro.experiments.validation import validate_figure

        base = _base_config(args)
        progress = _progress_printer(args.verbose)
        all_ok = True
        for fid in args.figures:
            fig = _FIGURE_FNS[f"figure{fid}"](base=base, progress=progress)
            report = validate_figure(fig)
            print(report.render())
            print()
            all_ok = all_ok and report.all_passed
        return 0 if all_ok else 1

    if args.command == "replicate":
        from repro.experiments.replication import compare_replicated, replicate_policies

        base = _base_config(args).replace(estimate_mode=args.estimate_mode)
        reps = replicate_policies(base, args.policies, args.seeds)
        rows = []
        for name, rep in reps.items():
            rows.append([name, str(rep.summary(args.metric))])
        print(render_table([f"policy ({args.metric})", "mean ± 95% CI"], rows))
        if "librarisk" in reps and "libra" in reps:
            diff = compare_replicated(reps["librarisk"], reps["libra"], args.metric)
            verdict = "significant" if diff.low > 0 else "not significant"
            print(f"\npaired librarisk − libra: {diff} ({verdict} at 95%)")
        return 0

    if args.command == "sensitivity":
        from repro.experiments.sensitivity import sensitivity

        result = sensitivity(_base_config(args), policy=args.policy, metric=args.metric)
        print(result.render())
        print(f"\nmost sensitive knob: {result.most_sensitive()}")
        return 0

    if args.command == "robustness":
        from repro.experiments.robustness import robustness_grid

        grid = robustness_grid(_base_config(args))
        print(grid.render())
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
