"""The paper's primary contribution, under one roof.

The deadline-delay risk metric (Eq. 3–6) and the LibraRisk admission
control (Algorithm 1) live in :mod:`repro.scheduling` next to the
baselines they are compared against; this package re-exports them so
the contribution is addressable as ``repro.core``:

>>> from repro.core import LibraRiskPolicy, assess_delays, deadline_delay
>>> deadline_delay(0.0, 100.0)   # a job with no delay: the best value
1.0
"""

from repro.scheduling.librarisk import LibraRiskPolicy
from repro.scheduling.risk import RiskAssessment, assess_delays, deadline_delay
from repro.scheduling.diagnostics import (
    cluster_risk_profile,
    explain_admission,
    node_snapshot,
)

__all__ = [
    "LibraRiskPolicy",
    "RiskAssessment",
    "assess_delays",
    "cluster_risk_profile",
    "deadline_delay",
    "explain_admission",
    "node_snapshot",
]
