"""LibraRisk: admission by the risk of deadline delay (§3.3, Algorithm 1).

LibraRisk keeps Libra's proportional-share execution (Eq. 1–2) but
changes the two admission decisions:

1. **Suitability** — a node is suitable for the new job iff placing the
   job there leaves the node's *risk of deadline delay* at zero
   (σ_j = 0 over the Eq. 4 deadline-delay values of every resident job
   plus the new one, computed from *predicted* delays).  Unlike
   Libra's Σ share ≤ 1 test, this sees jobs the estimates can no
   longer describe: an overrunning job or one past its deadline
   produces a positive (predicted) delay and disqualifies the node.
2. **Placement** — the job goes only to zero-risk nodes ("LibraRisk
   only selects nodes that have zero risk of deadline delay", §3.3).
   Among those, this implementation keeps Libra's best-fit order by
   default — the paper redefines the candidate set, not the ordering —
   and under accurate estimates LibraRisk then tracks Libra closely,
   as the paper's panels (a)/(c) show.  (Not *identically*: σ measures
   spread, so a placement that delays every resident by the same
   proportion — e.g. two identical simultaneous jobs sharing a node —
   is still σ = 0 and can be admitted past its deadline, a degenerate
   case Libra's Σ share ≤ 1 test would refuse.  Misses under accurate
   estimates are therefore possible but never solitary — see
   ``test_librarisk_sigma_never_misses_alone``.)  ``node_order`` makes
   the choice sweepable (``"best_fit"``, ``"worst_fit"``, ``"index"``).

Algorithm 1 in pseudo-code form::

    for each node j:                         # lines 1–11
        tentatively place job new on j
        predict delay of every job on j      # line 4
        compute sigma_j                      # line 6
        if sigma_j == 0: j is suitable       # lines 8–10
    if |suitable| >= numproc_new: allocate   # lines 12–15
    else: reject                             # line 17
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.node import TimeSharedNode
from repro.cluster.share import SHARE_EPSILON, WORK_EPSILON
from repro.scheduling.base import SchedulingPolicy
from repro.scheduling.risk import RiskAssessment, assess_delays, refute_sigma_zero
from repro.sim.numerics import exact_zero

_NODE_ORDERS = ("worst_fit", "best_fit", "index")
_SUITABILITIES = ("sigma", "no-delay")

class LibraRiskPolicy(SchedulingPolicy):
    """The paper's contribution: risk-managed proportional-share admission.

    ``suitability`` selects the node-suitability test:

    * ``"sigma"`` (default) — the literal Algorithm 1 criterion
      σ_j = 0.  Because σ measures the *spread* of deadline-delay
      values, an otherwise-empty node is always suitable, which lets
      LibraRisk gamble on jobs whose inflated estimates claim
      infeasibility (see :mod:`repro.scheduling.risk`);
    * ``"no-delay"`` — stricter ablation: the node must additionally
      have no predicted delay for any job.

    ``node_order`` orders the zero-risk nodes for placement.  The paper
    only redefines *which* nodes are candidates, so the default keeps
    Libra's best-fit saturation; ``"worst_fit"`` and ``"index"`` are
    ablations (see :mod:`repro.experiments.ablations`).
    """

    name = "librarisk"
    discipline = "time_shared"

    def __init__(self, node_order: str = "best_fit", suitability: str = "sigma") -> None:
        super().__init__()
        if node_order not in _NODE_ORDERS:
            raise ValueError(f"node_order must be one of {_NODE_ORDERS}, got {node_order!r}")
        if suitability not in _SUITABILITIES:
            raise ValueError(
                f"suitability must be one of {_SUITABILITIES}, got {suitability!r}"
            )
        self.node_order = node_order
        self.suitability = suitability

    def validate_cluster(self, cluster: Cluster) -> None:
        for node in cluster:
            if not isinstance(node, TimeSharedNode):
                raise TypeError(
                    f"{self.name} requires time-shared nodes; node {node.node_id} "
                    f"is {type(node).__name__}"
                )
        self._attach_sync_deferral(cluster)

    # -- Algorithm 1 -----------------------------------------------------------
    def assess_node(self, node: TimeSharedNode, job: Job, now: float) -> RiskAssessment:
        """Risk of deadline delay on ``node`` if ``job`` were placed there."""
        assert self.cluster is not None
        est_time = self.cluster.est_time_on(node, job.estimated_runtime)
        predicted = node.predicted_delays(now, extra=[(job, est_time)])
        pairs = [(delay, j.remaining_deadline(now)) for j, delay in predicted]
        return assess_delays(pairs)

    def on_job_submitted(self, job: Job, now: float) -> None:
        if self.fast_path:
            self._submit_fast(job, now)
        else:
            self._submit_reference(job, now)

    def _submit_reference(self, job: Job, now: float) -> None:
        """Pre-cache admission scan, kept verbatim as the escape hatch
        (``REPRO_DISABLE_ADMISSION_CACHE=1``).  The fast path must stay
        byte-identical to this — see ``tests/test_scheduling/
        test_cache_parity.py``."""
        assert self.cluster is not None and self.rms is not None
        zero_risk: list[TimeSharedNode] = []
        online = 0
        sigma_mode = self.suitability == "sigma"
        for node in self.cluster:
            assert isinstance(node, TimeSharedNode)
            if not node.online:
                continue
            online += 1
            node.sync(now)
            if sigma_mode and not node.tasks:
                # Exact shortcut: the new job alone yields a single
                # deadline-delay value, so σ = 0 by definition — the
                # empty-node gamble needs no projection.
                zero_risk.append(node)
                continue
            assessment = self.assess_node(node, job, now)
            suitable = assessment.zero_risk if sigma_mode else assessment.strictly_safe
            if suitable:
                zero_risk.append(node)

        if len(zero_risk) < job.numproc:
            self._reject_unsuitable(job, zero_risk, online, sigma_mode)
            return

        chosen = self._order(zero_risk, now)[: job.numproc]
        self._allocate(job, chosen, now)

    def _submit_fast(self, job: Job, now: float) -> None:
        """One fused pass per node, equal to :meth:`_submit_reference`
        decision-for-decision and bit-for-bit.

        Exact shortcuts, in test order per node:

        * **poisoned** — a resident past its absolute deadline keeps
          every Eq. 4 value infinite, so σ_j = ∞ until the task set
          changes; the verdict comes from
          :meth:`~repro.cluster.node.TimeSharedNode.min_resident_deadline`
          (cached per node generation) without touching the ledgers;
        * **infeasible job** — a candidate whose own deadline already
          passed has an infinite Eq. 4 value on every occupied node,
          so only empty nodes (σ of one value) can admit it;
        * **σ>0 certificate** — the node's per-generation
          :meth:`~repro.cluster.node.TimeSharedNode.admission_aggregate`
          feeds :func:`~repro.scheduling.risk.refute_sigma_zero`: an
          O(1) robust-margin proof that placing the job leaves σ_j > 0,
          answered from aggregates alone — no ledger sync, no walk, no
          projection (the sync it skips is deferred through the shared
          chop log and replayed bit-identically on next touch);
        * **healthy fit** — all shares defined, each ≤ 1 and Σ ≤ 1 + ε:
          the projection would predict zero delay for everyone, making
          every deadline-delay exactly ``(0 + r) / r = 1.0``, σ = 0 —
          suitable with no projection and no assessment object.  The
          same loop accumulates the resident-only Eq. 2 sum with
          ``total_admission_share``'s skip rule and summation order, so
          best-fit ordering can reuse it instead of re-walking the node;
        * **projection** — everything else rebuilds the aggregate at
          the (now synced) current instant, retries the certificate,
          and only then runs the exact forward simulation — the fused
          columnar ``_project_sigma`` kernel, float-identical to
          ``_project_delays`` + ``assess_delays`` with an early exit on
          the first infinite deadline-delay.
        """
        cluster = self.cluster
        assert cluster is not None and self.rms is not None
        sigma_mode = self.suitability == "sigma"
        lazy = self.lazy_sync
        verify = self.verify_cert
        zero_risk: list[TimeSharedNode] = []
        loads: dict[int, float] = {}
        online = 0
        n_poisoned = n_fast_fit = n_empty = n_projected = 0
        n_cert = n_agg_hit = n_agg_built = n_infeasible = 0
        rem_new = job.remaining_deadline(now)
        infeasible = rem_new <= 0.0
        # est_time_on(node, est) = (est * reference_rating) / rating —
        # hoist the numerator; the division stays per node.
        est_work_new = job.estimated_runtime * cluster.reference_rating
        self._note_scan_chop(now)

        for node in cluster.nodes:
            if not node.online:
                continue
            online += 1
            tasks = node.tasks
            if not tasks:
                if sigma_mode:
                    # Empty-node gamble: one deadline-delay value, σ = 0.
                    n_empty += 1
                    zero_risk.append(node)
                    loads[node.node_id] = 0.0
                    continue
            else:
                if node._min_deadline_gen != node.generation:
                    node.min_resident_deadline()  # rebuild the cache
                if now >= node._min_deadline:
                    # The poison verdict needs no ledgers, only the
                    # deadlines — valid until the task set changes.
                    # Sync deferred: the chop replays on next touch.
                    n_poisoned += 1
                    continue
                if infeasible:
                    # The candidate's own Eq. 4 value is infinite on
                    # any occupied node (its remaining deadline is
                    # non-positive), so the projection could only
                    # return unsuitable — in either suitability mode.
                    n_infeasible += 1
                    continue
                if node._agg_gen == node.generation:
                    agg = node._agg
                    if agg is not None:
                        n_agg_hit += 1
                        if refute_sigma_zero(
                            agg,
                            now,
                            est_work_new / node.rating,
                            rem_new,
                            node.share_params.overrun_floor_share,
                        ):
                            n_cert += 1
                            if verify:
                                self._assert_cert(
                                    node, job, est_work_new / node.rating, now
                                )
                            continue
                if not lazy:
                    # Eager mode advances every occupied node's ledgers
                    # at every submit instant, exactly as the reference
                    # scan does — identical sync chop points keep the
                    # busy-time accumulation bit-identical (pending
                    # deferred chops replay first, inside sync).
                    node.sync(now)

            rating = node.rating
            est_new = est_work_new / rating
            # Fused predicted_delays fast check over residents-then-new,
            # gathering the resident-only admission sum on the side.
            healthy = True
            total = 0.0
            resident_load = 0.0
            work_threshold = WORK_EPSILON / rating
            if lazy:
                dt = now - node._last_sync
                speed = rating * dt
            for task in tasks.values():
                if lazy:
                    est_work = task.remaining_est_work - task.rate * speed
                    if est_work < 0.0:
                        est_work = 0.0
                    est = est_work / rating
                else:
                    est = task.remaining_est_work / rating
                rem = task.deadline - now
                if est <= SHARE_EPSILON or rem <= 0.0:
                    healthy = False
                    break
                share = est / rem
                if share > 1.0:
                    healthy = False
                    break
                total += share
                if est > work_threshold:
                    # total_admission_share's zero-mode skip rule; same
                    # values in the same order as its own loop.
                    resident_load += share
            if healthy and est_new > SHARE_EPSILON and rem_new > 0.0:
                share_new = est_new / rem_new
                if share_new <= 1.0:
                    total += share_new
                    if total <= 1.0 + SHARE_EPSILON:
                        if tasks:
                            n_fast_fit += 1
                        else:
                            n_empty += 1
                        zero_risk.append(node)
                        loads[node.node_id] = resident_load
                        continue
            # Slow path: the exact forward projection (lazy nodes sync
            # first — the projection reads and the node may be chosen).
            if tasks:
                if lazy:
                    node.sync(now)
                agg = node._agg
                if node._agg_gen != node.generation or (
                    agg is not None and agg[0] < node._last_sync
                ):
                    # The walk proved this node over-committed or
                    # unhealthy; (re)build the aggregate at the freshly
                    # synced instant — zero staleness makes the O(1)
                    # certificate's bounds as sharp as they get — and
                    # retry it before paying for the projection.  Later
                    # scans then answer from the aggregate without
                    # touching the node at all.
                    n_agg_built += 1
                    agg = node.admission_aggregate()
                    if agg is not None and refute_sigma_zero(
                        agg,
                        now,
                        est_new,
                        rem_new,
                        node.share_params.overrun_floor_share,
                    ):
                        n_cert += 1
                        if verify:
                            self._assert_cert(node, job, est_new, now)
                        continue
            n_projected += 1
            if self._projected_suitable(node, job, est_new, now, sigma_mode):
                zero_risk.append(node)

        self._bump_cache_stats(
            online_scans=online,
            poison_skips=n_poisoned,
            fast_fit_hits=n_fast_fit,
            empty_shortcuts=n_empty,
            projections_run=n_projected,
            infeasible_skips=n_infeasible,
            agg_hits=n_agg_hit,
            agg_rebuilds=n_agg_built,
            sigma_cert_hits=n_cert,
        )

        if len(zero_risk) < job.numproc:
            self._reject_unsuitable(job, zero_risk, online, sigma_mode)
            return

        chosen = self._order_with_loads(zero_risk, loads, now)[: job.numproc]
        self._allocate(job, chosen, now)

    def _projected_suitable(
        self,
        node: TimeSharedNode,
        job: Job,
        est_new: float,
        now: float,
        sigma_mode: bool,
    ) -> bool:
        """Run the forward projection and decide suitability in one pass.

        Float-for-float the same computation as ``assess_node`` +
        ``RiskAssessment``, carried by the columnar
        :meth:`~repro.cluster.node.TimeSharedNode._project_sigma`
        kernel: deadline-delay values accumulate in pairs order
        (residents in task order, then the new job), Σv and Σv²
        left-to-right exactly as ``assess_delays``'s ``sum()`` calls,
        and σ == 0 ⇔ the unclamped variance is ≤ 0.  The only
        divergence is the early return on an infinite value — which
        ``assess_delays`` maps to σ = ∞, never suitable either way.
        """
        zero_risk, max_delay = node._project_sigma(now, est_new, job.absolute_deadline)
        if sigma_mode:
            return zero_risk
        return zero_risk and exact_zero(max_delay)

    def _assert_cert(
        self,
        node: TimeSharedNode,
        job: Job,
        est_new: float,
        now: float,
    ) -> None:
        """``REPRO_VERIFY_CERT``: prove a fired σ>0 certificate against
        the exact projection (debug/test only — the sync below is what
        the deferred path would have replayed anyway)."""
        node.sync(now)
        zero_risk, _ = node._project_sigma(now, est_new, job.absolute_deadline)
        if zero_risk:
            raise AssertionError(
                f"σ>0 certificate contradicted by the exact projection on node "
                f"{node.node_id} for job {job.job_id} at t={now:.6g}"
            )

    def _reject_unsuitable(
        self,
        job: Job,
        zero_risk: list[TimeSharedNode],
        online: int,
        sigma_mode: bool,
    ) -> None:
        unsuitable = online - len(zero_risk)
        criterion = "σ_j > 0" if sigma_mode else "predicted delay"
        self._reject(
            job,
            f"only {len(zero_risk)} of {job.numproc} required nodes are "
            f"zero-risk ({criterion} on {unsuitable}/{online} online nodes)",
            suitable=len(zero_risk),
            required=job.numproc,
            online=online,
            suitability=self.suitability,
        )

    def _order(self, nodes: list[TimeSharedNode], now: float) -> list[TimeSharedNode]:
        if self.node_order == "index":
            return sorted(nodes, key=lambda n: n.node_id)
        loads = {n.node_id: n.total_admission_share(now) for n in nodes}
        reverse = self.node_order == "best_fit"
        return sorted(
            nodes,
            key=lambda n: (-loads[n.node_id] if reverse else loads[n.node_id], n.node_id),
        )

    def _order_with_loads(
        self,
        nodes: list[TimeSharedNode],
        loads: dict[int, float],
        now: float,
    ) -> list[TimeSharedNode]:
        """:meth:`_order`, reusing the Eq. 2 sums the scan already built.

        Only nodes that went through the projection are missing from
        ``loads``; they get the on-demand ``total_admission_share`` walk
        the old code paid for *every* zero-risk node.
        """
        if self.node_order == "index":
            return sorted(nodes, key=lambda n: n.node_id)
        reused = 0
        for n in nodes:
            if n.node_id not in loads:
                loads[n.node_id] = n.total_admission_share(now)
            else:
                reused += 1
        stats = self.cache_stats
        stats["order_loads_reused"] = stats.get("order_loads_reused", 0) + reused
        stats["order_loads_computed"] = (
            stats.get("order_loads_computed", 0) + len(nodes) - reused
        )
        reverse = self.node_order == "best_fit"
        return sorted(
            nodes,
            key=lambda n: (-loads[n.node_id] if reverse else loads[n.node_id], n.node_id),
        )

    def _allocate(self, job: Job, nodes: list[TimeSharedNode], now: float) -> None:
        assert self.cluster is not None and self.rms is not None
        work = self.cluster.work_of(job.runtime)
        est_work = self.cluster.work_of(job.estimated_runtime)
        job.mark_running(now, [n.node_id for n in nodes])
        self._track(job)
        self.rms.notify_accepted(job)
        for node in nodes:
            node.add_task(job, work=work, est_work=est_work, now=now)
