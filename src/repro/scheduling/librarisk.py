"""LibraRisk: admission by the risk of deadline delay (§3.3, Algorithm 1).

LibraRisk keeps Libra's proportional-share execution (Eq. 1–2) but
changes the two admission decisions:

1. **Suitability** — a node is suitable for the new job iff placing the
   job there leaves the node's *risk of deadline delay* at zero
   (σ_j = 0 over the Eq. 4 deadline-delay values of every resident job
   plus the new one, computed from *predicted* delays).  Unlike
   Libra's Σ share ≤ 1 test, this sees jobs the estimates can no
   longer describe: an overrunning job or one past its deadline
   produces a positive (predicted) delay and disqualifies the node.
2. **Placement** — the job goes only to zero-risk nodes ("LibraRisk
   only selects nodes that have zero risk of deadline delay", §3.3).
   Among those, this implementation keeps Libra's best-fit order by
   default — the paper redefines the candidate set, not the ordering —
   and under accurate estimates LibraRisk then coincides with Libra
   exactly, as the paper's panels (a)/(c) show.  ``node_order`` makes
   the choice sweepable (``"best_fit"``, ``"worst_fit"``, ``"index"``).

Algorithm 1 in pseudo-code form::

    for each node j:                         # lines 1–11
        tentatively place job new on j
        predict delay of every job on j      # line 4
        compute sigma_j                      # line 6
        if sigma_j == 0: j is suitable       # lines 8–10
    if |suitable| >= numproc_new: allocate   # lines 12–15
    else: reject                             # line 17
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.node import TimeSharedNode
from repro.scheduling.base import SchedulingPolicy
from repro.scheduling.risk import RiskAssessment, assess_delays

_NODE_ORDERS = ("worst_fit", "best_fit", "index")
_SUITABILITIES = ("sigma", "no-delay")


class LibraRiskPolicy(SchedulingPolicy):
    """The paper's contribution: risk-managed proportional-share admission.

    ``suitability`` selects the node-suitability test:

    * ``"sigma"`` (default) — the literal Algorithm 1 criterion
      σ_j = 0.  Because σ measures the *spread* of deadline-delay
      values, an otherwise-empty node is always suitable, which lets
      LibraRisk gamble on jobs whose inflated estimates claim
      infeasibility (see :mod:`repro.scheduling.risk`);
    * ``"no-delay"`` — stricter ablation: the node must additionally
      have no predicted delay for any job.

    ``node_order`` orders the zero-risk nodes for placement.  The paper
    only redefines *which* nodes are candidates, so the default keeps
    Libra's best-fit saturation; ``"worst_fit"`` and ``"index"`` are
    ablations (see :mod:`repro.experiments.ablations`).
    """

    name = "librarisk"
    discipline = "time_shared"

    def __init__(self, node_order: str = "best_fit", suitability: str = "sigma") -> None:
        super().__init__()
        if node_order not in _NODE_ORDERS:
            raise ValueError(f"node_order must be one of {_NODE_ORDERS}, got {node_order!r}")
        if suitability not in _SUITABILITIES:
            raise ValueError(
                f"suitability must be one of {_SUITABILITIES}, got {suitability!r}"
            )
        self.node_order = node_order
        self.suitability = suitability

    def validate_cluster(self, cluster: Cluster) -> None:
        for node in cluster:
            if not isinstance(node, TimeSharedNode):
                raise TypeError(
                    f"{self.name} requires time-shared nodes; node {node.node_id} "
                    f"is {type(node).__name__}"
                )

    # -- Algorithm 1 -----------------------------------------------------------
    def assess_node(self, node: TimeSharedNode, job: Job, now: float) -> RiskAssessment:
        """Risk of deadline delay on ``node`` if ``job`` were placed there."""
        assert self.cluster is not None
        est_time = self.cluster.est_time_on(node, job.estimated_runtime)
        predicted = node.predicted_delays(now, extra=[(job, est_time)])
        pairs = [(delay, j.remaining_deadline(now)) for j, delay in predicted]
        return assess_delays(pairs)

    def on_job_submitted(self, job: Job, now: float) -> None:
        assert self.cluster is not None and self.rms is not None
        zero_risk: list[TimeSharedNode] = []
        online = 0
        sigma_mode = self.suitability == "sigma"
        for node in self.cluster:
            assert isinstance(node, TimeSharedNode)
            if not node.online:
                continue
            online += 1
            node.sync(now)
            if sigma_mode and not node.tasks:
                # Exact shortcut: the new job alone yields a single
                # deadline-delay value, so σ = 0 by definition — the
                # empty-node gamble needs no projection.
                zero_risk.append(node)
                continue
            assessment = self.assess_node(node, job, now)
            suitable = assessment.zero_risk if sigma_mode else assessment.strictly_safe
            if suitable:
                zero_risk.append(node)

        if len(zero_risk) < job.numproc:
            unsuitable = online - len(zero_risk)
            criterion = "σ_j > 0" if sigma_mode else "predicted delay"
            self._reject(
                job,
                f"only {len(zero_risk)} of {job.numproc} required nodes are "
                f"zero-risk ({criterion} on {unsuitable}/{online} online nodes)",
                suitable=len(zero_risk),
                required=job.numproc,
                online=online,
                suitability=self.suitability,
            )
            return

        chosen = self._order(zero_risk, now)[: job.numproc]
        self._allocate(job, chosen, now)

    def _order(self, nodes: list[TimeSharedNode], now: float) -> list[TimeSharedNode]:
        if self.node_order == "index":
            return sorted(nodes, key=lambda n: n.node_id)
        loads = {n.node_id: n.total_admission_share(now) for n in nodes}
        reverse = self.node_order == "best_fit"
        return sorted(
            nodes,
            key=lambda n: (-loads[n.node_id] if reverse else loads[n.node_id], n.node_id),
        )

    def _allocate(self, job: Job, nodes: list[TimeSharedNode], now: float) -> None:
        assert self.cluster is not None and self.rms is not None
        work = self.cluster.work_of(job.runtime)
        est_work = self.cluster.work_of(job.estimated_runtime)
        job.mark_running(now, [n.node_id for n in nodes])
        self._track(job)
        self.rms.notify_accepted(job)
        for node in nodes:
            node.add_task(job, work=work, est_work=est_work, now=now)
