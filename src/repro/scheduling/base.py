"""Common machinery shared by all admission-control policies.

A policy is bound once to a ``(sim, cluster, rms)`` triple and then
driven entirely by events:

* the RMS calls :meth:`SchedulingPolicy.on_job_submitted` for every
  arriving job;
* nodes call the policy back (it installs itself as their task
  listener) whenever a task finishes.

The base class tracks multi-node job completion: a parallel job has
``numproc`` tasks and completes when the last one finishes.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from repro.cluster.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import Node, NodeTask
    from repro.cluster.rms import ResourceManagementSystem
    from repro.sim.kernel import Simulator


class SchedulingPolicy(abc.ABC):
    """Abstract deadline-constrained admission control policy."""

    #: Short name used by the registry, CLI and result tables.
    name: str = "abstract"

    #: Node execution discipline this policy requires
    #: (``"space_shared"`` or ``"time_shared"``).
    discipline: str = "time_shared"

    def __init__(self) -> None:
        self.sim: Optional["Simulator"] = None
        self.cluster: Optional["Cluster"] = None
        self.rms: Optional["ResourceManagementSystem"] = None
        self._pending_tasks: dict[int, int] = {}  # job_id -> unfinished task count

    # -- wiring -----------------------------------------------------------
    def bind(self, sim: "Simulator", cluster: "Cluster", rms: "ResourceManagementSystem") -> None:
        """Attach to a simulation; installs this policy as node listener."""
        self.sim = sim
        self.cluster = cluster
        self.rms = rms
        for node in cluster:
            if node.listener is not None and node.listener is not self._task_listener:
                raise RuntimeError(f"node {node.node_id} already has a listener")
            node.listener = self._task_listener
        self.validate_cluster(cluster)

    def validate_cluster(self, cluster: "Cluster") -> None:
        """Hook: subclasses verify the node discipline matches."""

    # -- admission entry point ----------------------------------------------
    @abc.abstractmethod
    def on_job_submitted(self, job: Job, now: float) -> None:
        """Handle a job arriving at the RMS at simulated time ``now``."""

    # -- task/job completion tracking -----------------------------------------
    def _task_listener(self, node: "Node", task: "NodeTask", now: float) -> None:
        job = task.job
        remaining = self._pending_tasks.get(job.job_id)
        if remaining is None:
            raise RuntimeError(
                f"task completion for untracked job {job.job_id} on node {node.node_id}"
            )
        remaining -= 1
        if remaining > 0:
            self._pending_tasks[job.job_id] = remaining
            return
        del self._pending_tasks[job.job_id]
        job.mark_completed(now)
        assert self.rms is not None
        self.rms.notify_completed(job)
        self.on_job_completed(job, now)

    def on_job_completed(self, job: Job, now: float) -> None:
        """Hook: called after a job's last task finished (e.g. to dispatch
        queued work).  Default: nothing."""

    # -- node failure handling ---------------------------------------------
    def handle_node_failure(self, node: "Node", now: float) -> None:
        """A node failed: kill its jobs (SPMD semantics — losing one
        task kills the whole job, including its tasks on other nodes).

        Called by :class:`~repro.cluster.failures.NodeFailureInjector`
        (or tests) rather than by the node itself, because cleaning up
        a multi-node job requires cluster-wide bookkeeping only the
        policy has."""
        assert self.cluster is not None and self.rms is not None
        affected = node.fail(now)
        for job in affected:
            self._fail_job(job, now)
        self.on_node_failure(node, now)

    def handle_node_repair(self, node: "Node", now: float) -> None:
        """A failed node came back (empty)."""
        node.repair(now)
        self.on_node_repair(node, now)

    def _fail_job(self, job: Job, now: float) -> None:
        assert self.cluster is not None and self.rms is not None
        # Remove sibling tasks from the (online) nodes still running them.
        for node_id in job.assigned_nodes:
            other = self.cluster.node(node_id)
            if other.online and other.has_job(job.job_id):
                other.remove_task(job.job_id, now)
        self._pending_tasks.pop(job.job_id, None)
        job.mark_failed(now)
        self.rms.notify_failed(job)

    def on_node_failure(self, node: "Node", now: float) -> None:
        """Hook after a failure was processed.  Default: nothing."""

    def on_node_repair(self, node: "Node", now: float) -> None:
        """Hook after a repair (queue-based policies re-dispatch here)."""

    def _track(self, job: Job) -> None:
        """Register a started job for completion tracking."""
        self._pending_tasks[job.job_id] = job.numproc

    @property
    def running_jobs(self) -> int:
        """Number of jobs with at least one unfinished task."""
        return len(self._pending_tasks)

    # -- shared admission helpers --------------------------------------------
    def _reject(self, job: Job, reason: str) -> None:
        assert self.rms is not None
        job.mark_rejected(reason)
        self.rms.notify_rejected(job, reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} running={self.running_jobs}>"
