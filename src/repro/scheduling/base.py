"""Common machinery shared by all admission-control policies.

A policy is bound once to a ``(sim, cluster, rms)`` triple and then
driven entirely by events:

* the RMS calls :meth:`SchedulingPolicy.on_job_submitted` for every
  arriving job;
* nodes call the policy back (it installs itself as their task
  listener) whenever a task finishes.

The base class tracks multi-node job completion: a parallel job has
``numproc`` tasks and completes when the last one finishes.

Observability: setting :attr:`SchedulingPolicy.observer` (a
:class:`~repro.obs.hooks.PolicyObserver`) surfaces every admission
decision — accepts via :meth:`SchedulingPolicy._track`, rejects via
:meth:`SchedulingPolicy._reject` — with its reason and any structured
details the concrete policy supplies.
"""

from __future__ import annotations

import abc
import os
from typing import TYPE_CHECKING, Any, Optional

from repro.cluster.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import Node, NodeTask
    from repro.cluster.rms import ResourceManagementSystem
    from repro.obs.hooks import PolicyObserver
    from repro.sim.kernel import Simulator

#: Escape hatch: set to ``1`` to run every policy on its pre-cache
#: reference admission path (production debugging; the fast paths are
#: exact memoization, so both paths produce byte-identical output).
DISABLE_CACHE_ENV = "REPRO_DISABLE_ADMISSION_CACHE"

#: Opt-in: defer node ledger syncs until a node is actually read on a
#: slow path or mutated, instead of syncing every node on every submit.
#: Mathematically equivalent but NOT bit-identical to the eager default
#: (float subtraction is not associative across different sync chop
#: points), hence off unless requested — see docs/PERFORMANCE.md.
LAZY_SYNC_ENV = "REPRO_LAZY_SYNC"

#: Debug: double-check every O(1) σ>0 refutation certificate against
#: the exact forward projection (asserts on disagreement).  Slows scans
#: back down to projection cost; in lazy-sync mode the verification
#: sync may shift ledger chop points.  Test/diagnosis only.
VERIFY_CERT_ENV = "REPRO_VERIFY_CERT"

#: Compact the shared deferred-sync chop log once it grows past this
#: many scan instants (bounds memory; occupied nodes replay their
#: pending chops, idle/offline nodes drop theirs — exactly what the
#: eager scan would have done).
_CHOP_COMPACT_THRESHOLD = 4096


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


class SchedulingPolicy(abc.ABC):
    """Abstract deadline-constrained admission control policy."""

    #: Short name used by the registry, CLI and result tables.
    name: str = "abstract"

    #: Node execution discipline this policy requires
    #: (``"space_shared"`` or ``"time_shared"``).
    discipline: str = "time_shared"

    def __init__(self) -> None:
        self.sim: Optional["Simulator"] = None
        self.cluster: Optional["Cluster"] = None
        self.rms: Optional["ResourceManagementSystem"] = None
        #: Optional :class:`~repro.obs.hooks.PolicyObserver` notified of
        #: every admission decision with its reason.  Observers are
        #: passive: they may not mutate jobs or scheduling state.
        self.observer: Optional["PolicyObserver"] = None
        self._pending_tasks: dict[int, int] = {}  # job_id -> unfinished task count
        #: Admission fast-path switches, read once at construction so a
        #: policy's behaviour is fixed for its lifetime (tests override
        #: the attributes directly).
        self.fast_path = not _env_flag(DISABLE_CACHE_ENV)
        self.lazy_sync = _env_flag(LAZY_SYNC_ENV)
        self.verify_cert = _env_flag(VERIFY_CERT_ENV)
        #: Shared scan-instant log for deferred ledger sync (eager fast
        #: path only; see ``TimeSharedNode.attach_chop_log``).  ``None``
        #: when deferral is off.
        self._sync_chops: Optional[list[float]] = None
        #: Monotone counters describing fast-path effectiveness
        #: (suitability cache hits/misses, projections avoided, ...).
        #: Surfaced by the profiler's ``cache`` block and the service
        #: ``stats`` endpoint; never part of deterministic exports.
        self.cache_stats: dict[str, int] = {}
        #: Trace id of the submission currently being admitted, set by
        #: the serving engine around each ``submit`` so admission hooks
        #: and observers can correlate with the job's trace.  Read-only
        #: for policies; never injected into decision records (byte
        #: parity between traced and untraced runs).
        self.trace_context: Optional[str] = None

    # -- wiring -----------------------------------------------------------
    def bind(self, sim: "Simulator", cluster: "Cluster", rms: "ResourceManagementSystem") -> None:
        """Attach to a simulation; installs this policy as node listener."""
        self.sim = sim
        self.cluster = cluster
        self.rms = rms
        for node in cluster:
            if node.listener is not None and node.listener is not self._task_listener:
                raise RuntimeError(f"node {node.node_id} already has a listener")
            node.listener = self._task_listener
        self.validate_cluster(cluster)

    def validate_cluster(self, cluster: "Cluster") -> None:
        """Hook: subclasses verify the node discipline matches."""

    def _bump_cache_stats(self, **counts: int) -> None:
        """Add per-scan counts to :attr:`cache_stats` in one place.

        Replaces the ``stats.get(key, 0) + n`` pattern that the fast
        paths used to repeat per counter; keyword names become counter
        keys verbatim.
        """
        stats = self.cache_stats
        get = stats.get
        for key, n in counts.items():
            stats[key] = get(key, 0) + n

    def _attach_sync_deferral(self, cluster: "Cluster") -> None:
        """Share one deferred-sync chop log across the cluster's nodes.

        Eager fast path only: the reference scan syncs every occupied
        node at every submit instant, and those instants — the *chops*
        — are part of the byte-identical ledger history (float
        subtraction is not associative).  Deferral records each scan
        instant once here; a node the scan can reject in O(1) (poison,
        certificate) skips its sync and replays the identical chop
        sequence on its next real touch.  Lazy-sync mode keeps its own
        derivation and never attaches.
        """
        if not self.fast_path or self.lazy_sync:
            return
        chops: list[float] = []
        self._sync_chops = chops
        for node in cluster:
            attach = getattr(node, "attach_chop_log", None)
            if attach is not None:
                attach(chops)

    def _note_scan_chop(self, now: float) -> None:
        """Record one admission-scan instant in the shared chop log."""
        chops = self._sync_chops
        if chops is None:
            return
        if len(chops) >= _CHOP_COMPACT_THRESHOLD:
            self._compact_chops()
        chops.append(now)

    def _compact_chops(self) -> None:
        """Bound the chop log: replay occupied nodes, drop the rest.

        Materialising an occupied node performs exactly the deferred
        syncs the eager scan would have done; idle and offline nodes
        never replay chops anyway (the eager scan skips idle syncs and
        ``repair`` restarts the clock), so their indices just jump.
        """
        chops = self._sync_chops
        cluster = self.cluster
        if chops is None or cluster is None:
            return
        attached = [n for n in cluster if getattr(n, "_chops", None) is chops]
        for node in attached:
            if node.online and node.tasks:
                node._materialize()
            else:
                node._chop_idx = len(chops)
        del chops[:]
        for node in attached:
            node._chop_idx = 0

    # -- admission entry point ----------------------------------------------
    @abc.abstractmethod
    def on_job_submitted(self, job: Job, now: float) -> None:
        """Handle a job arriving at the RMS at simulated time ``now``."""

    # -- task/job completion tracking -----------------------------------------
    def _task_listener(self, node: "Node", task: "NodeTask", now: float) -> None:
        job = task.job
        remaining = self._pending_tasks.get(job.job_id)
        if remaining is None:
            raise RuntimeError(
                f"task completion for untracked job {job.job_id} on node {node.node_id}"
            )
        remaining -= 1
        if remaining > 0:
            self._pending_tasks[job.job_id] = remaining
            return
        del self._pending_tasks[job.job_id]
        job.mark_completed(now)
        assert self.rms is not None
        self.rms.notify_completed(job)
        self.on_job_completed(job, now)

    def on_job_completed(self, job: Job, now: float) -> None:
        """Hook: called after a job's last task finished (e.g. to dispatch
        queued work).  Default: nothing."""

    # -- node failure handling ---------------------------------------------
    def handle_node_failure(self, node: "Node", now: float) -> None:
        """A node failed: kill its jobs (SPMD semantics — losing one
        task kills the whole job, including its tasks on other nodes).

        Called by :class:`~repro.cluster.failures.NodeFailureInjector`
        (or tests) rather than by the node itself, because cleaning up
        a multi-node job requires cluster-wide bookkeeping only the
        policy has."""
        assert self.cluster is not None and self.rms is not None
        affected = node.fail(now)
        for job in affected:
            self._fail_job(job, now)
        self.on_node_failure(node, now)

    def handle_node_repair(self, node: "Node", now: float) -> None:
        """A failed node came back (empty)."""
        node.repair(now)
        self.on_node_repair(node, now)

    def _fail_job(self, job: Job, now: float) -> None:
        assert self.cluster is not None and self.rms is not None
        # Remove sibling tasks from the (online) nodes still running them.
        for node_id in job.assigned_nodes:
            other = self.cluster.node(node_id)
            if other.online and other.has_job(job.job_id):
                other.remove_task(job.job_id, now)
        self._pending_tasks.pop(job.job_id, None)
        job.mark_failed(now)
        self.rms.notify_failed(job)

    def on_node_failure(self, node: "Node", now: float) -> None:
        """Hook after a failure was processed.  Default: nothing."""

    def on_node_repair(self, node: "Node", now: float) -> None:
        """Hook after a repair (queue-based policies re-dispatch here)."""

    def _track(self, job: Job) -> None:
        """Register a started job for completion tracking.

        Every policy routes accepted jobs through here right after
        ``mark_running``, which makes it the one place an *accepted*
        admission decision is reliably observable across all policies.
        """
        self._pending_tasks[job.job_id] = job.numproc
        if self.observer is not None:
            self._record_decision(
                job,
                accepted=True,
                reason=f"started on {len(job.assigned_nodes)} node(s)",
                nodes=list(job.assigned_nodes),
            )

    @property
    def running_jobs(self) -> int:
        """Number of jobs with at least one unfinished task."""
        return len(self._pending_tasks)

    # -- shared admission helpers --------------------------------------------
    def _reject(self, job: Job, reason: str, **details: Any) -> None:
        """Refuse ``job`` with a human-readable ``reason``.

        ``details`` carries structured, JSON-able context for the
        decision record (e.g. suitable/required node counts); it is
        only consulted when an observer is attached.
        """
        assert self.rms is not None
        job.mark_rejected(reason)
        self.rms.notify_rejected(job, reason)
        if self.observer is not None:
            self._record_decision(job, accepted=False, reason=reason, **details)

    def _record_decision(
        self, job: Job, accepted: bool, reason: str = "", **details: Any
    ) -> None:
        """Forward one admission decision to the attached observer."""
        if self.observer is None:
            return
        assert self.sim is not None
        self.observer.on_admission_decision(
            policy_name=self.name,
            job=job,
            accepted=accepted,
            reason=reason,
            now=self.sim.now,
            details=details,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} running={self.running_jobs}>"
