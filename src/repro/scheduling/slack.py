"""QoPS-style soft-deadline admission control (slack factor).

The paper's related work (§2) contrasts Libra's hard deadlines with
QoPS (Islam, Balaji, Sadayappan & Panda, Cluster 2004), which "allows
soft deadlines by defining a slack factor for each job so that earlier
jobs can be delayed up to the slack factor if necessary to accommodate
later more urgent jobs".  This module implements that idea as an
extension baseline:

* every job's *soft* deadline is ``submit + deadline × slack_factor``;
* a new job is admitted iff a tentative EDF-ordered schedule of the
  whole queue **plus the new job** (built on estimated runtimes via a
  :class:`~repro.scheduling.profile.CapacityProfile`) completes every
  job by its soft deadline — i.e. accepting the newcomer may delay
  earlier jobs, but never beyond their slack;
* dispatch is EDF on space-shared nodes.

Note the headline metric still counts the *hard* deadline, so slack
trades a few late completions for a higher acceptance rate — a
qualitatively different answer to estimate risk than LibraRisk's.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.job import Job
from repro.scheduling.edf import QueuedSpaceSharedPolicy
from repro.scheduling.profile import profile_from_cluster


class SlackAdmissionPolicy(QueuedSpaceSharedPolicy):
    """Soft-deadline schedulability admission with EDF dispatch."""

    name = "qops-slack"

    def __init__(self, slack_factor: float = 1.2, admission_check: bool = True) -> None:
        super().__init__(admission_check=admission_check)
        if slack_factor < 1.0:
            raise ValueError(f"slack_factor must be >= 1, got {slack_factor}")
        self.slack_factor = slack_factor

    # -- soft deadlines -----------------------------------------------------
    def soft_deadline(self, job: Job) -> float:
        """Absolute soft deadline: hard deadline stretched by the slack."""
        return job.submit_time + job.deadline * self.slack_factor

    # -- admission ------------------------------------------------------------
    def on_job_submitted(self, job: Job, now: float) -> None:
        if self.admission_check and not self._schedulable_with(job, now):
            self._reject(job, "tentative schedule violates a soft deadline")
            return
        job.mark_queued()
        self.queue.append(job)
        self._dispatch(now)

    def _schedulable_with(self, new_job: Job, now: float) -> bool:
        """Can queue + new job all meet their soft deadlines (by estimate)?"""
        assert self.cluster is not None
        profile = profile_from_cluster(self.cluster, now)
        tentative = sorted(
            [*self.queue, new_job],
            key=lambda j: (j.absolute_deadline, j.submit_time, j.job_id),
        )
        for j in tentative:
            start = profile.earliest_fit(j.numproc, j.estimated_runtime, now)
            if start is None:
                return False
            if start + j.estimated_runtime > self.soft_deadline(j):
                return False
            profile.add_reservation(start, start + j.estimated_runtime, j.numproc)
        return True

    # -- dispatch (EDF order, soft-deadline dispatch check) ---------------------
    def select_next(self, now: float) -> Optional[Job]:
        if not self.queue:
            return None
        return min(
            self.queue,
            key=lambda j: (j.absolute_deadline, j.submit_time, j.job_id),
        )

    def _feasible(self, job: Job, now: float) -> bool:
        return now + job.estimated_runtime <= self.soft_deadline(job)
