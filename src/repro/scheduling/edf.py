"""Non-preemptive Earliest Deadline First with relaxed admission (paper §4).

EDF differs structurally from Libra/LibraRisk:

* nodes are **space-shared** — a job holds ``numproc`` whole nodes for
  its runtime;
* arriving jobs are *not* rejected at submission.  They enter a queue,
  and at every scheduling event the waiting job with the earliest
  absolute deadline is (re)selected — so a later-arriving, more urgent
  job can displace the current selection while it waits for processors
  ("better selection choice");
* a selected job is rejected only *prior to execution*, when its
  deadline has expired or ``now + estimated_runtime`` exceeds its
  absolute deadline ("more generous job admission control").

Both quoted behaviours are the advantages the paper grants EDF; they
explain why EDF wins under the heaviest workloads (Fig. 1) and lose
their value as load drops.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.node import SpaceSharedNode
from repro.scheduling.base import SchedulingPolicy


class QueuedSpaceSharedPolicy(SchedulingPolicy):
    """Shared machinery for queue-based space-shared policies.

    Subclasses define the selection order via :meth:`select_next`.
    Dispatch is non-preemptive and non-backfilling: if the selected job
    cannot get its processors, the policy waits (it does not try a
    different job behind it).
    """

    discipline = "space_shared"

    def __init__(self, admission_check: bool = True) -> None:
        super().__init__()
        self.admission_check = admission_check
        self.queue: list[Job] = []

    def validate_cluster(self, cluster: Cluster) -> None:
        for node in cluster:
            if not isinstance(node, SpaceSharedNode):
                raise TypeError(
                    f"{self.name} requires space-shared nodes; node {node.node_id} "
                    f"is {type(node).__name__}"
                )

    # -- selection hook -----------------------------------------------------
    def select_next(self, now: float) -> Optional[Job]:
        """Return the queued job to dispatch next (``None`` if queue empty)."""
        raise NotImplementedError

    # -- event handlers -------------------------------------------------------
    def on_job_submitted(self, job: Job, now: float) -> None:
        job.mark_queued()
        self.queue.append(job)
        self._dispatch(now)

    def on_job_completed(self, job: Job, now: float) -> None:
        self._dispatch(now)

    def on_node_failure(self, node, now: float) -> None:
        # Failed jobs freed sibling nodes; queued work may now fit.
        self._dispatch(now)

    def on_node_repair(self, node, now: float) -> None:
        self._dispatch(now)

    # -- dispatch loop ----------------------------------------------------------
    def _dispatch(self, now: float) -> None:
        assert self.cluster is not None and self.rms is not None
        while self.queue:
            job = self.select_next(now)
            if job is None:
                return
            if self.admission_check and not self._feasible(job, now):
                # "Prior to execution": a job that cannot meet its deadline
                # even if started right now will only get worse by waiting,
                # so reject it at selection rather than letting a doomed
                # wide job block the head of the queue.
                self.queue.remove(job)
                remaining = job.remaining_deadline(now)
                if remaining <= 0:
                    reason = (
                        f"deadline expired {-remaining:.6g}s before dispatch"
                    )
                else:
                    reason = (
                        f"infeasible at dispatch: estimate {job.estimated_runtime:.6g}s "
                        f"exceeds remaining deadline {remaining:.6g}s"
                    )
                self._reject(
                    job, reason,
                    remaining_deadline=remaining,
                    estimated_runtime=job.estimated_runtime,
                    queued=len(self.queue),
                )
                continue
            # Stop scanning as soon as numproc free nodes are found: the
            # first numproc in cluster order are exactly the slice the
            # full list comprehension would have taken.
            free: list[SpaceSharedNode] = []
            for n in self.cluster:
                if n.available_for_work:
                    free.append(n)
                    if len(free) == job.numproc:
                        break
            else:
                # Non-preemptive wait: the selection is revisited at the
                # next scheduling event, which may pick a different job.
                return
            self.queue.remove(job)
            self._start(job, free, now)

    def _feasible(self, job: Job, now: float) -> bool:
        """Paper's dispatch-time check, based on the *estimate*."""
        return now + job.estimated_runtime <= job.absolute_deadline

    def _start(self, job: Job, nodes: list[SpaceSharedNode], now: float) -> None:
        assert self.cluster is not None and self.rms is not None
        work = self.cluster.work_of(job.runtime)
        job.mark_running(now, [n.node_id for n in nodes])
        self._track(job)
        self.rms.notify_accepted(job)
        for node in nodes:
            node.start_task(job, work, now)

    @property
    def queued_jobs(self) -> int:
        return len(self.queue)


class EDFPolicy(QueuedSpaceSharedPolicy):
    """Earliest Deadline First: select the queued job with the earliest
    absolute deadline (ties: earlier submission, then lower job id)."""

    name = "edf"

    def select_next(self, now: float) -> Optional[Job]:
        if not self.queue:
            return None
        return min(
            self.queue,
            key=lambda j: (j.absolute_deadline, j.submit_time, j.job_id),
        )
