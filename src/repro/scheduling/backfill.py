"""EASY (aggressive) backfilling with a deadline-ordered queue.

Extension baseline beyond the paper: the paper's EDF never runs a job
out of order, so short jobs stall behind a wide job waiting for
processors.  EASY backfilling (Mu'alem & Feitelson 2001, cited as [9])
gives the *head* job a reservation at the earliest time enough nodes
free up — computed from the running jobs' **estimated** completions —
and lets later jobs jump ahead iff they would not push that
reservation back.

Because the reservation is based on user estimates, backfilling is
itself sensitive to estimate inaccuracy, which makes this policy a
useful fourth line in the paper's sweeps.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.job import Job
from repro.scheduling.edf import QueuedSpaceSharedPolicy


class EasyBackfillPolicy(QueuedSpaceSharedPolicy):
    """Deadline-ordered EASY backfilling on space-shared nodes."""

    name = "edf-easy"

    def select_next(self, now: float) -> Optional[Job]:
        if not self.queue:
            return None
        return min(
            self.queue,
            key=lambda j: (j.absolute_deadline, j.submit_time, j.job_id),
        )

    def _dispatch(self, now: float) -> None:
        assert self.cluster is not None
        progress = True
        while progress and self.queue:
            progress = False
            # Phase 1: start (or reject) head jobs while processors allow.
            while self.queue:
                head = self.select_next(now)
                assert head is not None
                if self.admission_check and not self._feasible(head, now):
                    # Doomed regardless of waiting; reject at selection so
                    # it cannot hold the reservation (see EDF dispatch).
                    self.queue.remove(head)
                    self._reject(head, "deadline expired or infeasible at dispatch")
                    progress = True
                    continue
                free = [n for n in self.cluster if n.available_for_work]
                if len(free) < head.numproc:
                    break
                self.queue.remove(head)
                progress = True
                self._start(head, free[: head.numproc], now)
            # Phase 2: the head is blocked; backfill behind its reservation.
            if self.queue:
                progress |= self._backfill(now)

    # -- EASY reservation ---------------------------------------------------
    def _reservation(self, head: Job, now: float) -> tuple[float, int]:
        """Earliest (estimated) start for ``head`` and the spare node count.

        Returns ``(shadow_time, extra_nodes)``: at ``shadow_time`` the
        head is predicted to have its processors; ``extra_nodes`` is how
        many nodes beyond the head's requirement are predicted free then.
        """
        assert self.cluster is not None
        idle = sum(1 for n in self.cluster if n.available_for_work)
        if idle >= head.numproc:
            return now, idle - head.numproc

        # Estimated release times of running jobs, earliest first.  A job
        # already past its estimate releases "immediately" for planning.
        releases: dict[int, tuple[float, int]] = {}
        for job_id, count in self._running_node_counts().items():
            job = self._running_job(job_id)
            started = job.start_time if job.start_time is not None else now
            est_end = max(now, started + job.estimated_runtime)
            releases[job_id] = (est_end, count)

        available = idle
        shadow = now
        for est_end, count in sorted(releases.values()):
            available += count
            shadow = est_end
            if available >= head.numproc:
                return shadow, available - head.numproc
        # Head can never fit (should not happen when numproc <= cluster
        # size); treat as an infinitely distant reservation.
        return float("inf"), 0

    def _running_node_counts(self) -> dict[int, int]:
        assert self.cluster is not None
        counts: dict[int, int] = {}
        for node in self.cluster:
            for job_id in node.tasks:
                counts[job_id] = counts.get(job_id, 0) + 1
        return counts

    def _running_job(self, job_id: int) -> Job:
        assert self.cluster is not None
        for node in self.cluster:
            task = node.tasks.get(job_id)
            if task is not None:
                return task.job
        raise KeyError(job_id)

    # -- backfill pass -----------------------------------------------------------
    def _backfill(self, now: float) -> bool:
        assert self.cluster is not None
        head = self.select_next(now)
        assert head is not None
        shadow, extra = self._reservation(head, now)
        started_any = False
        # Candidates behind the head, most urgent first.
        candidates = sorted(
            (j for j in self.queue if j is not head),
            key=lambda j: (j.absolute_deadline, j.submit_time, j.job_id),
        )
        for job in candidates:
            free = [n for n in self.cluster if n.available_for_work]
            if job.numproc > len(free):
                continue
            fits_before_shadow = now + job.estimated_runtime <= shadow
            fits_in_extra = job.numproc <= extra
            if not (fits_before_shadow or fits_in_extra):
                continue
            self.queue.remove(job)
            if self.admission_check and not self._feasible(job, now):
                self._reject(job, "deadline expired or infeasible at dispatch")
                started_any = True
                continue
            self._start(job, free[: job.numproc], now)
            started_any = True
            if not fits_before_shadow:
                extra -= job.numproc
        return started_any
