"""Admission-state diagnostics: inspect a live cluster the way the
admission controls see it.

Useful for debugging why a policy accepted or rejected a job, for the
``risk_anatomy`` example, and for post-mortem analysis in tests:

* :func:`node_snapshot` — one node's tasks, Eq. 2 total share, and
  risk assessment;
* :func:`cluster_risk_profile` — every node's snapshot at an instant;
* :func:`explain_admission` — dry-run both Libra's and LibraRisk's
  tests for a hypothetical job, per node, without placing it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.node import TimeSharedNode
from repro.experiments.reporting import render_table
from repro.scheduling.risk import RiskAssessment, assess_delays


@dataclass(frozen=True)
class NodeSnapshot:
    """Admission-relevant state of one node at one instant."""

    node_id: int
    num_tasks: int
    total_share: float
    overruns: int
    expired: int
    risk: RiskAssessment

    @property
    def healthy(self) -> bool:
        return self.overruns == 0 and self.expired == 0 and self.risk.zero_risk


def node_snapshot(node: TimeSharedNode, now: float) -> NodeSnapshot:
    """Snapshot one time-shared node (syncs its ledgers to ``now``)."""
    node.sync(now)
    overruns = sum(1 for t in node.tasks.values() if t.overrun)
    expired = sum(
        1 for t in node.tasks.values() if t.job.remaining_deadline(now) <= 0.0
    )
    predicted = node.predicted_delays(now)
    risk = assess_delays([(d, j.remaining_deadline(now)) for j, d in predicted])
    return NodeSnapshot(
        node_id=node.node_id,
        num_tasks=node.num_tasks,
        total_share=node.total_admission_share(now),
        overruns=overruns,
        expired=expired,
        risk=risk,
    )


def cluster_risk_profile(cluster: Cluster, now: float) -> list[NodeSnapshot]:
    """Snapshot every time-shared node in the cluster."""
    out = []
    for node in cluster:
        if isinstance(node, TimeSharedNode):
            out.append(node_snapshot(node, now))
    return out


def render_profile(snapshots: list[NodeSnapshot]) -> str:
    """ASCII table of a cluster risk profile."""
    rows = []
    for s in snapshots:
        sigma = "inf" if math.isinf(s.risk.sigma) else f"{s.risk.sigma:.4f}"
        rows.append([
            s.node_id, s.num_tasks, f"{s.total_share:.3f}", s.overruns, s.expired,
            sigma, "yes" if s.risk.zero_risk else "no",
        ])
    return render_table(
        ["node", "tasks", "Eq.2 share", "overrun", "expired", "sigma", "zero-risk"],
        rows,
    )


@dataclass(frozen=True)
class AdmissionExplanation:
    """Per-node verdicts of both policies' tests for one hypothetical job."""

    job_id: int
    numproc: int
    libra_suitable: list[int]
    librarisk_suitable: list[int]

    @property
    def libra_accepts(self) -> bool:
        return len(self.libra_suitable) >= self.numproc

    @property
    def librarisk_accepts(self) -> bool:
        return len(self.librarisk_suitable) >= self.numproc

    def render(self) -> str:
        return (
            f"job {self.job_id} (numproc={self.numproc}):\n"
            f"  Libra:     {len(self.libra_suitable)} suitable node(s) "
            f"-> {'ACCEPT' if self.libra_accepts else 'REJECT'}\n"
            f"  LibraRisk: {len(self.librarisk_suitable)} suitable node(s) "
            f"-> {'ACCEPT' if self.librarisk_accepts else 'REJECT'}"
        )


def explain_admission(cluster: Cluster, job: Job, now: float) -> AdmissionExplanation:
    """Dry-run both admission tests for ``job`` on every node.

    Neither test mutates the cluster (beyond syncing ledgers to
    ``now``), so this is safe to call on a live simulation.
    """
    libra_ok: list[int] = []
    risk_ok: list[int] = []
    for node in cluster:
        if not isinstance(node, TimeSharedNode):
            continue
        node.sync(now)
        est_time = cluster.est_time_on(node, job.estimated_runtime)
        total = node.total_admission_share(
            now, extra=[(est_time, job.remaining_deadline(now))]
        )
        if total <= 1.0 + 1e-9:
            libra_ok.append(node.node_id)
        predicted = node.predicted_delays(now, extra=[(job, est_time)])
        risk = assess_delays([(d, j.remaining_deadline(now)) for j, d in predicted])
        if risk.zero_risk:
            risk_ok.append(node.node_id)
    return AdmissionExplanation(
        job_id=job.job_id,
        numproc=job.numproc,
        libra_suitable=libra_ok,
        librarisk_suitable=risk_ok,
    )
