"""Capacity profiles: node availability over (estimated) future time.

Reservation-based schedulers (conservative backfilling, schedulability
tests for soft-deadline admission) need to answer one question: *given
what we believe about the future, when is the earliest instant at
which ``n`` nodes are simultaneously free for ``d`` seconds?*

:class:`CapacityProfile` models free capacity as a step function built
from three ingredients:

* a base capacity (nodes free right now),
* **releases** — capacity returning at estimated completion times of
  running jobs,
* **reservations** — capacity committed to queued jobs over
  ``[start, end)`` windows.

All times are estimates; callers are expected to rebuild profiles as
reality diverges (this is what conservative backfilling's
"schedule compression" is).
"""

from __future__ import annotations

from typing import Optional


class CapacityProfile:
    """Step-function view of future free capacity.

    Parameters
    ----------
    base_free:
        Nodes free at (and after) ``origin`` before any release or
        reservation is considered.
    origin:
        The "now" of the profile; queries below it are invalid.
    """

    def __init__(self, base_free: int, origin: float = 0.0) -> None:
        if base_free < 0:
            raise ValueError(f"base_free must be >= 0, got {base_free}")
        self.base_free = int(base_free)
        self.origin = float(origin)
        # Capacity deltas at absolute times: +n for releases and
        # reservation ends, -n for reservation starts.
        self._deltas: dict[float, int] = {}

    # -- construction -------------------------------------------------------
    def add_release(self, time: float, count: int) -> None:
        """``count`` nodes become free at ``time`` (estimated completion)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        if count == 0:
            return
        t = max(float(time), self.origin)
        self._deltas[t] = self._deltas.get(t, 0) + count

    def add_reservation(self, start: float, end: float, count: int) -> None:
        """Commit ``count`` nodes over ``[start, end)``."""
        if count < 0:
            raise ValueError("count must be >= 0")
        if end < start:
            raise ValueError(f"reservation end {end} before start {start}")
        if count == 0 or end == start:
            return
        s = max(float(start), self.origin)
        e = max(float(end), self.origin)
        if e <= s:
            return
        self._deltas[s] = self._deltas.get(s, 0) - count
        self._deltas[e] = self._deltas.get(e, 0) + count

    # -- queries ----------------------------------------------------------------
    def breakpoints(self) -> list[float]:
        """Times (ascending) at which free capacity changes."""
        return sorted(t for t, d in self._deltas.items() if d != 0)

    def free_at(self, time: float) -> int:
        """Free capacity at absolute ``time`` (>= origin)."""
        if time < self.origin - 1e-9:
            raise ValueError(f"query at t={time} precedes profile origin {self.origin}")
        free = self.base_free
        for t, delta in self._deltas.items():
            if t <= time:
                free += delta
        return free

    def min_free_over(self, start: float, end: float) -> int:
        """Minimum free capacity over the window ``[start, end)``."""
        if end < start:
            raise ValueError("end before start")
        lowest = self.free_at(start)
        for t in self.breakpoints():
            if start < t < end:
                lowest = min(lowest, self.free_at(t))
        return lowest

    def earliest_fit(
        self,
        count: int,
        duration: float,
        not_before: Optional[float] = None,
    ) -> Optional[float]:
        """Earliest start ``s >= not_before`` with ``count`` nodes free
        over ``[s, s + duration)``; ``None`` if capacity never suffices.

        Candidate starts are ``not_before`` and every later breakpoint
        (capacity is piecewise constant, so no other instant can be the
        earliest feasible start).
        """
        if count < 0 or duration < 0:
            raise ValueError("count and duration must be >= 0")
        floor = self.origin if not_before is None else max(not_before, self.origin)
        candidates = [floor] + [t for t in self.breakpoints() if t > floor]
        for s in candidates:
            if self.min_free_over(s, s + duration) >= count:
                return s
        return None

    def would_fit(self, count: int, start: float, duration: float) -> bool:
        """True iff ``count`` nodes are free over ``[start, start+duration)``."""
        return self.min_free_over(start, start + duration) >= count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        steps = ", ".join(
            f"t={t:g}:{'+' if d > 0 else ''}{d}" for t, d in sorted(self._deltas.items())
        )
        return f"<CapacityProfile base={self.base_free} origin={self.origin:g} [{steps}]>"


def profile_from_cluster(cluster, now: float) -> CapacityProfile:
    """Build a profile from a space-shared cluster's current state.

    Free capacity is the idle-node count; each running job contributes
    a release at its *estimated* completion (never before ``now``).
    """
    idle = sum(1 for n in cluster if n.available_for_work)
    profile = CapacityProfile(base_free=idle, origin=now)
    seen: dict[int, tuple[float, int]] = {}
    for node in cluster:
        for job_id, task in node.tasks.items():
            job = task.job
            started = job.start_time if job.start_time is not None else now
            est_end = max(now, started + job.estimated_runtime)
            end, count = seen.get(job_id, (est_end, 0))
            seen[job_id] = (end, count + 1)
    for est_end, count in seen.values():
        profile.add_release(est_end, count)
    return profile
