"""First-Come First-Served baseline (extension beyond the paper).

Identical machinery to EDF but selects jobs strictly in arrival order.
Useful as a deadline-oblivious control: the gap between FCFS and EDF
isolates what deadline-aware *ordering* buys, independently of
admission control.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.job import Job
from repro.scheduling.edf import QueuedSpaceSharedPolicy


class FCFSPolicy(QueuedSpaceSharedPolicy):
    """Dispatch queued jobs in submission order.

    ``admission_check=False`` turns off even the dispatch-time deadline
    test, giving a classical FCFS run-to-completion scheduler.
    """

    name = "fcfs"

    def select_next(self, now: float) -> Optional[Job]:
        if not self.queue:
            return None
        return min(self.queue, key=lambda j: (j.submit_time, j.job_id))
