"""Deadline-constrained job admission controls.

The three policies compared in the paper:

* :class:`~repro.scheduling.edf.EDFPolicy` — non-preemptive Earliest
  Deadline First on space-shared nodes with the paper's *relaxed*
  admission control (reject only at dispatch time);
* :class:`~repro.scheduling.libra.LibraPolicy` — Libra's
  deadline-based proportional processor share with best-fit node
  selection (Sherwani et al. 2004, as summarised in §3.1);
* :class:`~repro.scheduling.librarisk.LibraRiskPolicy` — the paper's
  contribution: admission by the *risk of deadline delay* σ_j
  (Eq. 4–6, Algorithm 1).

Extension baselines beyond the paper:

* :class:`~repro.scheduling.fcfs.FCFSPolicy` — first-come
  first-served on space-shared nodes;
* :class:`~repro.scheduling.backfill.EasyBackfillPolicy` — EASY
  (aggressive) backfilling with a deadline-ordered queue.
"""

from repro.scheduling.base import SchedulingPolicy
from repro.scheduling.edf import EDFPolicy
from repro.scheduling.fcfs import FCFSPolicy
from repro.scheduling.libra import LibraPolicy
from repro.scheduling.librarisk import LibraRiskPolicy
from repro.scheduling.backfill import EasyBackfillPolicy
from repro.scheduling.conservative import ConservativePolicy
from repro.scheduling.profile import CapacityProfile
from repro.scheduling.slack import SlackAdmissionPolicy
from repro.scheduling.diagnostics import cluster_risk_profile, explain_admission, node_snapshot
from repro.scheduling.registry import available_policies, make_policy, register_policy
from repro.scheduling.risk import RiskAssessment, assess_delays, deadline_delay

__all__ = [
    "CapacityProfile",
    "ConservativePolicy",
    "EDFPolicy",
    "EasyBackfillPolicy",
    "FCFSPolicy",
    "LibraPolicy",
    "LibraRiskPolicy",
    "RiskAssessment",
    "SlackAdmissionPolicy",
    "SchedulingPolicy",
    "assess_delays",
    "available_policies",
    "cluster_risk_profile",
    "deadline_delay",
    "explain_admission",
    "make_policy",
    "node_snapshot",
    "register_policy",
]
