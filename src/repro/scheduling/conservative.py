"""Conservative backfilling with reservation-based deadline admission.

Extension baseline beyond the paper.  Classic conservative backfilling
(Mu'alem & Feitelson 2001) gives **every** queued job a reservation at
submission time, computed from the running jobs' estimated completions
and the reservations of the jobs ahead of it.  Later jobs may start
earlier than earlier jobs only if they do not push any existing
reservation back — which the reservation computation guarantees by
construction.

Because each job has a guaranteed (estimate-based) latest start, a
deadline SLA can be checked **at submission**: the job is rejected
immediately if even its reserved completion misses the deadline.  That
makes this the reservation-flavoured counterpart of Libra's
immediate-admission guarantee, on space-shared nodes.

When a job finishes early (over-estimates!), the whole schedule is
recompressed: reservations are recomputed in queue order against the
new reality, which can only move start times earlier.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.job import Job
from repro.scheduling.edf import QueuedSpaceSharedPolicy
from repro.scheduling.profile import CapacityProfile, profile_from_cluster


class ConservativePolicy(QueuedSpaceSharedPolicy):
    """Conservative backfilling, submission-order reservations.

    ``admission_check`` (inherited, default True) controls the
    submission-time deadline test; with it off this is plain
    conservative backfilling.
    """

    name = "conservative"

    def __init__(self, admission_check: bool = True) -> None:
        super().__init__(admission_check=admission_check)
        #: job_id -> reserved start time (recomputed on every event).
        self.reservations: dict[int, float] = {}

    # -- queue order ---------------------------------------------------------
    def select_next(self, now: float) -> Optional[Job]:  # pragma: no cover
        # Unused: dispatch is reservation-driven, not head-of-line.
        return self.queue[0] if self.queue else None

    # -- event handlers ---------------------------------------------------------
    def on_job_submitted(self, job: Job, now: float) -> None:
        assert self.cluster is not None
        if self.admission_check:
            start = self._reserved_start_for(job, now)
            if start is None or start + job.estimated_runtime > job.absolute_deadline:
                self._reject(job, "guaranteed completion misses deadline")
                return
        job.mark_queued()
        self.queue.append(job)
        self._dispatch(now)

    def on_job_completed(self, job: Job, now: float) -> None:
        self._dispatch(now)

    # -- reservation machinery -----------------------------------------------------
    def _base_profile(self, now: float) -> CapacityProfile:
        assert self.cluster is not None
        return profile_from_cluster(self.cluster, now)

    def _reserved_start_for(self, job: Job, now: float) -> Optional[float]:
        """Earliest start for ``job`` behind the current queue's reservations."""
        profile = self._base_profile(now)
        for queued in self.queue:
            start = profile.earliest_fit(queued.numproc, queued.estimated_runtime, now)
            if start is None:
                return None
            profile.add_reservation(start, start + queued.estimated_runtime, queued.numproc)
        return profile.earliest_fit(job.numproc, job.estimated_runtime, now)

    def _dispatch(self, now: float) -> None:
        """Recompress the schedule and start everything reserved for now."""
        assert self.cluster is not None
        changed = True
        while changed:
            changed = False
            profile = self._base_profile(now)
            self.reservations.clear()
            for queued in list(self.queue):
                start = profile.earliest_fit(queued.numproc, queued.estimated_runtime, now)
                if start is None:
                    # Cluster can never fit this job (numproc too large).
                    self.queue.remove(queued)
                    self._reject(queued, "cannot ever fit on this cluster")
                    changed = True
                    break
                if self.admission_check and (
                    start + queued.estimated_runtime > queued.absolute_deadline
                ):
                    # Reality (overruns) pushed the reservation past the
                    # deadline after admission.
                    self.queue.remove(queued)
                    self._reject(queued, "reservation slipped past deadline")
                    changed = True
                    break
                if start <= now + 1e-9:
                    free = [n for n in self.cluster if n.available_for_work]
                    if len(free) < queued.numproc:
                        # Estimated releases have not materialised (a
                        # running job overruns its estimate): wait.
                        profile.add_reservation(
                            start, start + queued.estimated_runtime, queued.numproc
                        )
                        self.reservations[queued.job_id] = start
                        continue
                    self.queue.remove(queued)
                    self._start(queued, free[: queued.numproc], now)
                    changed = True
                    break
                profile.add_reservation(
                    start, start + queued.estimated_runtime, queued.numproc
                )
                self.reservations[queued.job_id] = start
