"""The deadline-delay metric and the risk of deadline delay (Eq. 4–6).

Paper §3.2: for a job ``i`` with delay ``delay_i`` (Eq. 3) and
remaining deadline ``remaining_deadline_i``::

    deadline_delay_i = (delay_i + remaining_deadline_i) / remaining_deadline_i     (Eq. 4)

with minimum/best value 1 at zero delay; the value grows when the
delay is longer *or* the remaining deadline shorter, which is what
penalises delaying urgent jobs.  Per node ``j``::

    µ_j = mean(deadline_delay_ij)                                                   (Eq. 5)
    σ_j = sqrt(mean(deadline_delay_ij²) − µ_j²)                                     (Eq. 6)

σ_j is the **risk of deadline delay**; σ_j = 0 is the ideal.

σ measures *spread*, not delay — and that is the mechanism
----------------------------------------------------------
The paper is explicit that "a high risk σ_j indicates a high
**uncertainty** of jobs on node j not to experience deadline delays".
σ of identical values is zero, so the literal criterion has two
consequences that together produce LibraRisk's measured advantage:

* a node holding **no other jobs** is always suitable (a single
  deadline-delay value has σ = 0) — so LibraRisk *gambles* on jobs
  whose (usually over-inflated) estimates claim they cannot meet their
  deadline, placing them on empty nodes where the gamble endangers
  nobody else.  Libra's Σ share ≤ 1 test rejects those jobs outright;
  since real runtimes are far below the inflated estimates, the
  gambles usually win, which is where LibraRisk's extra fulfilled jobs
  under inaccurate estimates come from;
* a node whose resident jobs are on time is suitable only if the new
  job leaves every deadline-delay value equal — i.e. nobody (new job
  included) is predicted late — so previously accepted jobs stay
  protected, and a node carrying an already-delayed (overrun or
  expired) job is never suitable.

:attr:`RiskAssessment.zero_risk` therefore implements the literal
σ = 0 test (with ``inf`` values never zero-risk);
:attr:`RiskAssessment.strictly_safe` is the stricter no-predicted-
delay variant, kept as an ablation (``LibraRiskPolicy(
suitability="no-delay")``).

Other degenerate case: ``remaining_deadline <= 0`` makes Eq. 4
undefined; such a job is already in violation, so its
``deadline_delay`` is ``+inf``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.cluster.share import SHARE_EPSILON
from repro.sim.numerics import exact_zero

#: Relative robustness margin of the O(1) refutation certificate: every
#: inequality it relies on must hold by this relative factor, which
#: swamps both accumulated ledger-chop drift (~1e-12 relative) and the
#: ~1e-6 relative spread the float σ-test can fail to distinguish from
#: zero.  Anything closer falls back to the exact projection.
_REL = 1e-4
#: The certificate only fires when the first projected completion is
#: late by more than this (seconds) — an order of magnitude above
#: ``PREDICTED_DELAY_EPSILON`` so the projection could never clamp that
#: delay to zero.
_CLAMP_GUARD = 1e-5
#: Absolute slack absorbing float accumulation error of the aggregate
#: sums and the per-resident ``SHARE_EPSILON`` classification losses.
_SLACK = 1e-9


def deadline_delay(delay: float, remaining_deadline: float) -> float:
    """Eq. 4 impact of a (predicted) delay on a job's remaining deadline.

    Parameters
    ----------
    delay:
        Non-negative (predicted) delay in seconds; may be ``inf`` for a
        job that can never finish under current allocation.
    remaining_deadline:
        Seconds until the job's absolute deadline; non-positive means
        the deadline already passed.
    """
    if delay < 0:
        raise ValueError(f"delay must be >= 0, got {delay}")
    if remaining_deadline <= 0.0:
        return math.inf
    if math.isinf(delay):
        return math.inf
    return (delay + remaining_deadline) / remaining_deadline


@dataclass(frozen=True)
class RiskAssessment:
    """Result of evaluating a node's (hypothetical) job set."""

    #: Eq. 5 mean of the deadline-delay values (1.0 for an empty node).
    mu: float
    #: Eq. 6 population standard deviation — the risk of deadline delay.
    sigma: float
    #: Largest predicted delay (seconds) over the node's jobs.
    max_delay: float
    #: Number of jobs assessed.
    n_jobs: int

    @property
    def zero_risk(self) -> bool:
        """Literal Algorithm 1 suitability: σ_j = 0 (and finite)."""
        return exact_zero(self.sigma)

    @property
    def strictly_safe(self) -> bool:
        """Stricter ablation: additionally no predicted delay at all."""
        return exact_zero(self.max_delay) and exact_zero(self.sigma)


def assess_delays(pairs: Sequence[tuple[float, float]]) -> RiskAssessment:
    """Assess a node from ``(predicted_delay, remaining_deadline)`` pairs.

    An empty node has µ = 1 (the metric's best value), σ = 0 and is
    trivially zero-risk.
    """
    if not pairs:
        return RiskAssessment(mu=1.0, sigma=0.0, max_delay=0.0, n_jobs=0)
    values = [deadline_delay(delay, rem) for delay, rem in pairs]
    max_delay = max(delay for delay, _ in pairs)
    if any(math.isinf(v) for v in values):
        return RiskAssessment(mu=math.inf, sigma=math.inf, max_delay=max_delay, n_jobs=len(values))
    n = len(values)
    mu = sum(values) / n
    # Population variance via E[X^2] - mu^2 exactly as Eq. 6 writes it;
    # guard the tiny negative residue floating point can produce.
    var = max(0.0, sum(v * v for v in values) / n - mu * mu)
    return RiskAssessment(mu=mu, sigma=math.sqrt(var), max_delay=max_delay, n_jobs=n)


def refute_sigma_zero(
    agg: tuple,
    now: float,
    est_new: float,
    rem_new: float,
    floor: float,
) -> bool:
    """O(1) certificate that placing the candidate leaves σ_j > 0.

    ``agg`` is a :meth:`TimeSharedNode.admission_aggregate` tuple built
    at some ``t0 <= now`` of the node's *current* generation;
    ``est_new``/``rem_new`` are the candidate's estimated remaining
    runtime on this node and remaining deadline, and ``floor`` the
    overrun floor share.  Returns ``True`` only when the node is
    **provably** not zero-risk — the caller may then skip the exact
    forward projection; ``False`` means "cannot decide", never
    "suitable".

    Soundness argument (each step robust by ``_REL`` against ledger
    drift and the ~1e-6 spread the float σ-test cannot resolve):

    1. Every healthy resident's Eq. 1 share is non-decreasing between
       recomputes (its rate was fixed at ``min(share, 1) * scale`` with
       ``scale <= 1``), so ``sum_min`` built at ``t0`` lower-bounds the
       projection's first-phase share total at ``now``; symmetrically
       the deadline ratio ``(d_min - t0) / (d_min - now)`` caps its
       growth, giving an upper bound.  Stability guards (``min_est0``
       vs. elapsed time, all deadlines still ahead) pin the
       healthy/overrun classification.
    2. If the total robustly exceeds 1, the projection's first
       completion happens at ``rem_c * total`` where ``rem_c`` is the
       smallest remaining deadline — provided that entry's share is
       robustly unclamped (checked, ties conservatively) — so the first
       completer records deadline-delay ``v = total > 1 + margin``
       (the clamp guard keeps its delay above the zero-snap epsilon).
    3. Any overrun resident records ``v = 1.0`` exactly (delay 0,
       deadline still ahead): spread ≥ margin ⇒ σ > 0.
    4. With no overruns, suppose the recorded values were all within
       float-σ resolution of each other, hence all ≈ ``total``: then
       every entry's completion lands at ``now + v * rem_i``, so the
       robustly-unique farthest-deadline entry ``k`` eventually runs
       alone with remaining deadline ≥ ``rem_k - total_hi * rem_2nd``
       and an unclamped share ≤ 1 − margin — finishing *on time*,
       recording ``v_k = 1.0`` and contradicting the hypothesis.
       Deadline ties at the maximum make the bound non-positive and
       fall back automatically.

    A **clamped candidate** (``s_n >= 1``, the same float test the
    projection applies) extends step 2: it contributes exactly 1.0 to
    every phase total and stays clamped throughout (the estimate/
    deadline gap only widens at rates ≤ 1), and its phase-1 completion
    coordinate is ``est_new`` rather than ``rem_new``.  Two robust
    sub-cases:

    * *resident first* (``est_new`` robustly above ``rem_min_r``): the
      earliest-deadline resident completes first at ``rem_min_r *
      total`` — step 2 applies verbatim with that resident required
      robustly unclamped;
    * *candidate first* (``est_new`` robustly below ``rem_min_r``): the
      candidate completes at ``est_new * total``, recording ``v = total
      * s_n`` with **no** assumption on any resident share (``sum_min``
      already clamps them), and its delay ≥ ``(total − 1) * rem_new``
      clears the zero-snap epsilon since ``est_new >= rem_new``.  The
      σ = 0 hypothesis value then carries the factor ``s_n``, so step
      4's upper bound ``total_hi`` is scaled by it.

    The ambiguous band between the two falls back to the projection.
    """
    (
        t0,
        n_healthy,
        n_overrun,
        sum_min,
        d_min_h,
        est0_min_d,
        d_max,
        d_2nd,
        est0_max_d,
        min_est0,
        _sum_zero,
        _d_min_z,
        _min_w_est0,
    ) = agg
    if rem_new <= 0.0 or est_new <= SHARE_EPSILON:
        return False
    dt_age = now - t0
    # Classification stability: every t0-healthy resident must still
    # have estimate robustly above the overrun threshold (estimated
    # time declines at most 1:1 with wall time).
    if min_est0 - dt_age <= 1e-6:
        return False
    rem_min_r = d_min_h - now
    if rem_min_r <= 0.0:
        return False
    s_n = est_new / rem_new
    s_n_c = s_n if s_n <= 1.0 else 1.0
    total_lo = (
        sum_min * (1.0 - _SLACK)
        + n_overrun * floor
        + s_n_c
        - (_SLACK + n_healthy * 1e-11)
    )
    # Robust over-commit: the projection's first-phase total exceeds 1
    # by more than every float tolerance combined.
    if total_lo <= 1.0 + _REL * (1.0 + total_lo):
        return False
    # The earliest FIRST-PHASE completion must belong to a robustly
    # unclamped entry so it lands at rem_c * total.  An entry's phase-1
    # completion coordinate is est / min(share, 1): ``rem`` while the
    # share is unclamped, ``est`` once it clamps to exactly 1 — which
    # is where a clamped *candidate* stays sound: it contributes
    # exactly 1.0 to every phase total (estimate exceeds remaining
    # deadline, and the gap only widens at rates <= 1), so the
    # earliest-deadline *resident* still completes first at
    # rem_min_r * total provided it does so robustly.  Deadlines are
    # exact constants, so the resident minimum is unambiguous.
    v_scale = 1.0
    if s_n >= 1.0:
        # Clamped candidate (same float test the projection applies).
        if est_new * (1.0 - _REL) > rem_min_r:
            # Earliest-deadline resident robustly completes first (every
            # resident coordinate is >= rem_min_r, clamped or not; the
            # candidate's is est_new): v_first = total as usual, so the
            # resident itself must be robustly unclamped.
            if est0_min_d > rem_min_r * (1.0 - _REL):
                return False
            rem_c = rem_min_r
        elif est_new * (1.0 + _REL) <= rem_min_r:
            # Candidate robustly completes first, at est_new * total:
            # its Eq. 4 value is total * s_n — needing no assumption on
            # any resident share (sum_min already clamps them).  Its
            # delay >= (total - 1) * rem_new since est_new >= rem_new.
            rem_c = rem_new
            v_scale = s_n
        else:
            return False  # ambiguous first completer
    elif rem_new <= rem_min_r:
        if est_new > rem_new * (1.0 - _REL):
            return False
        if rem_min_r <= rem_new * (1.0 + _REL) and est0_min_d > rem_min_r * (1.0 - _REL):
            return False
        rem_c = rem_new
    else:
        if est0_min_d > rem_min_r * (1.0 - _REL):
            return False
        if rem_new <= rem_min_r * (1.0 + _REL) and est_new > rem_new * (1.0 - _REL):
            return False
        rem_c = rem_min_r
    # The first completer's delay must clear the zero-snap epsilon.
    if (total_lo - 1.0) * rem_c <= _CLAMP_GUARD:
        return False
    if n_overrun:
        # An overrun resident pins v = 1.0 against the late first
        # completer's v >= total > 1 + margin: σ > 0.
        return True
    if n_healthy == 0:
        # Unreachable from the scan (an empty node takes the empty-node
        # shortcut), but guard the aggregate sentinels regardless.
        return False
    # No overruns: refute via the farthest-deadline entry finishing on
    # time once everyone else is (hypothetically) done.
    ratio = (d_min_h - t0) / rem_min_r
    # Upper bound on the common Eq. 4 value under the σ = 0 hypothesis:
    # the first completer's v is total (times s_n when the clamped
    # candidate finishes first), so every other value must sit within
    # float-σ resolution of it.
    total_hi = (
        sum_min * ratio * (1.0 + _SLACK) + s_n_c + _SLACK + n_healthy * 1e-11
    ) * v_scale
    rem_max_r = d_max - now
    if rem_new >= rem_max_r:
        rem_k = rem_new
        rem_2 = rem_max_r
        est_k = est_new
    else:
        rem_k = rem_max_r
        rem_2nd_r = d_2nd - now
        rem_2 = rem_2nd_r if rem_new <= rem_2nd_r else rem_new
        est_k = est0_max_d
    final_rem_lo = rem_k - total_hi * rem_2 * (1.0 + _REL)
    if final_rem_lo <= 0.0:
        return False
    if est_k > final_rem_lo * (1.0 - _REL):
        return False
    return True
