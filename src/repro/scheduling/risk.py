"""The deadline-delay metric and the risk of deadline delay (Eq. 4–6).

Paper §3.2: for a job ``i`` with delay ``delay_i`` (Eq. 3) and
remaining deadline ``remaining_deadline_i``::

    deadline_delay_i = (delay_i + remaining_deadline_i) / remaining_deadline_i     (Eq. 4)

with minimum/best value 1 at zero delay; the value grows when the
delay is longer *or* the remaining deadline shorter, which is what
penalises delaying urgent jobs.  Per node ``j``::

    µ_j = mean(deadline_delay_ij)                                                   (Eq. 5)
    σ_j = sqrt(mean(deadline_delay_ij²) − µ_j²)                                     (Eq. 6)

σ_j is the **risk of deadline delay**; σ_j = 0 is the ideal.

σ measures *spread*, not delay — and that is the mechanism
----------------------------------------------------------
The paper is explicit that "a high risk σ_j indicates a high
**uncertainty** of jobs on node j not to experience deadline delays".
σ of identical values is zero, so the literal criterion has two
consequences that together produce LibraRisk's measured advantage:

* a node holding **no other jobs** is always suitable (a single
  deadline-delay value has σ = 0) — so LibraRisk *gambles* on jobs
  whose (usually over-inflated) estimates claim they cannot meet their
  deadline, placing them on empty nodes where the gamble endangers
  nobody else.  Libra's Σ share ≤ 1 test rejects those jobs outright;
  since real runtimes are far below the inflated estimates, the
  gambles usually win, which is where LibraRisk's extra fulfilled jobs
  under inaccurate estimates come from;
* a node whose resident jobs are on time is suitable only if the new
  job leaves every deadline-delay value equal — i.e. nobody (new job
  included) is predicted late — so previously accepted jobs stay
  protected, and a node carrying an already-delayed (overrun or
  expired) job is never suitable.

:attr:`RiskAssessment.zero_risk` therefore implements the literal
σ = 0 test (with ``inf`` values never zero-risk);
:attr:`RiskAssessment.strictly_safe` is the stricter no-predicted-
delay variant, kept as an ablation (``LibraRiskPolicy(
suitability="no-delay")``).

Other degenerate case: ``remaining_deadline <= 0`` makes Eq. 4
undefined; such a job is already in violation, so its
``deadline_delay`` is ``+inf``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.sim.numerics import exact_zero


def deadline_delay(delay: float, remaining_deadline: float) -> float:
    """Eq. 4 impact of a (predicted) delay on a job's remaining deadline.

    Parameters
    ----------
    delay:
        Non-negative (predicted) delay in seconds; may be ``inf`` for a
        job that can never finish under current allocation.
    remaining_deadline:
        Seconds until the job's absolute deadline; non-positive means
        the deadline already passed.
    """
    if delay < 0:
        raise ValueError(f"delay must be >= 0, got {delay}")
    if remaining_deadline <= 0.0:
        return math.inf
    if math.isinf(delay):
        return math.inf
    return (delay + remaining_deadline) / remaining_deadline


@dataclass(frozen=True)
class RiskAssessment:
    """Result of evaluating a node's (hypothetical) job set."""

    #: Eq. 5 mean of the deadline-delay values (1.0 for an empty node).
    mu: float
    #: Eq. 6 population standard deviation — the risk of deadline delay.
    sigma: float
    #: Largest predicted delay (seconds) over the node's jobs.
    max_delay: float
    #: Number of jobs assessed.
    n_jobs: int

    @property
    def zero_risk(self) -> bool:
        """Literal Algorithm 1 suitability: σ_j = 0 (and finite)."""
        return exact_zero(self.sigma)

    @property
    def strictly_safe(self) -> bool:
        """Stricter ablation: additionally no predicted delay at all."""
        return exact_zero(self.max_delay) and exact_zero(self.sigma)


def assess_delays(pairs: Sequence[tuple[float, float]]) -> RiskAssessment:
    """Assess a node from ``(predicted_delay, remaining_deadline)`` pairs.

    An empty node has µ = 1 (the metric's best value), σ = 0 and is
    trivially zero-risk.
    """
    if not pairs:
        return RiskAssessment(mu=1.0, sigma=0.0, max_delay=0.0, n_jobs=0)
    values = [deadline_delay(delay, rem) for delay, rem in pairs]
    max_delay = max(delay for delay, _ in pairs)
    if any(math.isinf(v) for v in values):
        return RiskAssessment(mu=math.inf, sigma=math.inf, max_delay=max_delay, n_jobs=len(values))
    n = len(values)
    mu = sum(values) / n
    # Population variance via E[X^2] - mu^2 exactly as Eq. 6 writes it;
    # guard the tiny negative residue floating point can produce.
    var = max(0.0, sum(v * v for v in values) / n - mu * mu)
    return RiskAssessment(mu=mu, sigma=math.sqrt(var), max_delay=max_delay, n_jobs=n)
