"""Libra: deadline-based proportional processor share admission (§3.1).

A new job ``new`` requiring ``numproc_new`` nodes is admitted iff there
are at least ``numproc_new`` nodes ``j`` for which the Eq. 2 total
share — including the new job's Eq. 1 share
``estimated_runtime / deadline`` — does not exceed the node's capacity
of 1.  Accepted jobs start immediately at their allocated shares.

Node selection is **best fit**: "nodes that have the least available
processor time after accepting the new job will be selected first so
that nodes are saturated to their maximum" (§3.3).  That saturation is
exactly what makes Libra fragile to estimate error, which LibraRisk
then fixes.

The ``expired_job_share_mode`` knob controls how Libra's Eq. 2 sum
sees resident jobs whose state the estimate can no longer describe —
an overrunning job (estimate exhausted) or one whose deadline has
already passed.  Eq. 1 is undefined for them; the default ``"zero"``
simply omits them, reproducing the blindness the paper attributes to
Libra ("it relies heavily on the idealistic assumption of accurate
runtime estimates").
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.node import TimeSharedNode
from repro.cluster.share import WORK_EPSILON
from repro.scheduling.base import SchedulingPolicy

#: Slack for float error in the Σ share <= 1 capacity test.
CAPACITY_EPSILON = 1e-9

#: Robustness margin of the O(1) over-commitment certificate (relative).
_CERT_REL = 1e-4
#: Absolute slack absorbing aggregate accumulation error.
_CERT_SLACK = 1e-9


def _over_commitment_certified(
    agg: tuple,
    now: float,
    s_new: float,
    rating: float,
) -> bool:
    """O(1) proof that the Eq. 2 zero-mode total robustly exceeds 1.

    ``agg`` is a ``TimeSharedNode.admission_aggregate`` tuple of the
    node's current generation (its ``sum_zero``/``d_min_z``/
    ``min_w_est0`` slots), ``s_new`` the candidate's exact unclamped
    Eq. 1 share.  Sound because every resident share counted at build
    time ``t0`` is non-decreasing while its execution rate stays fixed
    (no generation bump), *provided* no counted resident crosses its
    deadline (``d_min_z`` guard) or falls under the zero-mode skip
    threshold (``min_w_est0`` guard, estimates decline at most at the
    node's rating) by ``now``.  Returns ``True`` only when the walk
    would certainly reject; ``False`` means "walk the node".
    """
    t0 = agg[0]
    sum_zero = agg[10]
    d_min_z = agg[11]
    min_w_est0 = agg[12]
    if now >= d_min_z:
        return False
    if min_w_est0 - rating * (now - t0) <= WORK_EPSILON + _CERT_SLACK:
        return False
    total_lo = sum_zero * (1.0 - _CERT_SLACK) - _CERT_SLACK + s_new
    return total_lo > 1.0 + CAPACITY_EPSILON + _CERT_REL * (1.0 + total_lo)


class LibraPolicy(SchedulingPolicy):
    """Deadline-based proportional-share admission with best-fit placement."""

    name = "libra"
    discipline = "time_shared"

    def __init__(self, expired_job_share_mode: str = "zero") -> None:
        super().__init__()
        if expired_job_share_mode not in ("zero", "floor", "infinite"):
            raise ValueError(f"unknown expired_job_share_mode {expired_job_share_mode!r}")
        self.expired_job_share_mode = expired_job_share_mode

    def validate_cluster(self, cluster: Cluster) -> None:
        for node in cluster:
            if not isinstance(node, TimeSharedNode):
                raise TypeError(
                    f"{self.name} requires time-shared nodes; node {node.node_id} "
                    f"is {type(node).__name__}"
                )
        if self.expired_job_share_mode == "zero":
            # Non-default Eq. 2 modes always take the reference scan,
            # which syncs directly — deferral would never be exercised.
            self._attach_sync_deferral(cluster)

    # -- admission ----------------------------------------------------------
    def on_job_submitted(self, job: Job, now: float) -> None:
        # The inlined fast scan only replicates the default "zero" Eq. 2
        # semantics; the research knobs take the reference path.
        if self.fast_path and self.expired_job_share_mode == "zero":
            self._submit_fast(job, now)
        else:
            self._submit_reference(job, now)

    def _submit_reference(self, job: Job, now: float) -> None:
        """Pre-cache admission scan, kept verbatim as the escape hatch
        (``REPRO_DISABLE_ADMISSION_CACHE=1``) and for the non-default
        ``expired_job_share_mode`` values."""
        assert self.cluster is not None and self.rms is not None
        suitable: list[tuple[float, TimeSharedNode]] = []
        for node in self.cluster:
            assert isinstance(node, TimeSharedNode)
            if not node.online:
                continue
            node.sync(now)  # bring work ledgers to `now` before reading shares
            est_time = self.cluster.est_time_on(node, job.estimated_runtime)
            total = node.total_admission_share(
                now,
                extra=[(est_time, job.remaining_deadline(now))],
                expired_job_share_mode=self.expired_job_share_mode,
            )
            if total <= 1.0 + CAPACITY_EPSILON:
                suitable.append((total, node))

        online = sum(1 for n in self.cluster if n.online)
        self._finish(job, suitable, online, now)

    def _submit_fast(self, job: Job, now: float) -> None:
        """The ``"zero"``-mode scan with ``total_admission_share``
        inlined: same skip rule, same summation order, bit-identical
        totals — but no per-node method dispatch, no extra-pair list,
        and no sync calls on idle nodes (an empty node's sync is a pure
        no-op).  A job whose deadline already passed gets an infinite
        Eq. 1 share on every node, so the scan degenerates to the online
        count (ledger syncs deferred through the shared chop log).  An
        over-committed node's generation gets an
        :meth:`~repro.cluster.node.TimeSharedNode.admission_aggregate`
        built once, after which :func:`_over_commitment_certified`
        rejects it in O(1) — no sync, no resident walk — until its task
        set changes."""
        cluster = self.cluster
        assert cluster is not None and self.rms is not None
        lazy = self.lazy_sync
        verify = self.verify_cert
        suitable: list[tuple[float, TimeSharedNode]] = []
        online = 0
        n_walked = n_cert = n_agg_hit = n_agg_built = 0
        rem_new = job.remaining_deadline(now)
        feasible = rem_new > 0.0
        # est_time_on(node, est) = (est * reference_rating) / rating.
        est_work_new = job.estimated_runtime * cluster.reference_rating
        self._note_scan_chop(now)

        for node in cluster.nodes:
            if not node.online:
                continue
            online += 1
            tasks = node.tasks
            if not feasible:
                # admission_share(·, rem <= 0) = inf on every node;
                # occupied nodes' syncs are deferred to the chop log.
                continue
            rating = node.rating
            if tasks:
                if node._agg_gen == node.generation:
                    agg = node._agg
                    if agg is not None:
                        n_agg_hit += 1
                        s_new = (est_work_new / rating) / rem_new
                        if _over_commitment_certified(agg, now, s_new, rating):
                            n_cert += 1
                            if verify:
                                self._assert_capacity_cert(node, job, now)
                            continue
                if not lazy:
                    node.sync(now)
            work_threshold = WORK_EPSILON / rating
            total = 0.0
            n_walked += 1
            if lazy:
                speed = rating * (now - node._last_sync)
            for task in tasks.values():
                if lazy:
                    est_work = task.remaining_est_work - task.rate * speed
                    if est_work < 0.0:
                        est_work = 0.0
                    est = est_work / rating
                else:
                    est = task.remaining_est_work / rating
                rem = task.deadline - now
                if est <= work_threshold or rem <= 0.0:
                    continue  # "zero" mode: expired/exhausted jobs vanish
                total += est / rem
            total += (est_work_new / rating) / rem_new
            if total <= 1.0 + CAPACITY_EPSILON:
                suitable.append((total, node))
            elif tasks and node._agg_gen != node.generation:
                # Over-committed: build the aggregate once per node
                # generation so later scans reject in O(1).  No
                # staleness refresh: the certificate is one-sided
                # (sum_zero only grows while rates are fixed), so an
                # aging aggregate weakens it but never unsounds it —
                # and re-building every scan costs more than the walks
                # the sharper bounds would save.
                n_agg_built += 1
                node.admission_aggregate()

        self._bump_cache_stats(
            online_scans=online,
            inline_share_sums=n_walked,
            capacity_cert_hits=n_cert,
            agg_hits=n_agg_hit,
            agg_rebuilds=n_agg_built,
        )
        self._finish(job, suitable, online, now)

    def _assert_capacity_cert(self, node: TimeSharedNode, job: Job, now: float) -> None:
        """``REPRO_VERIFY_CERT``: prove a fired over-commitment
        certificate against the exact Eq. 2 walk (debug/test only)."""
        assert self.cluster is not None
        node.sync(now)
        est_time = self.cluster.est_time_on(node, job.estimated_runtime)
        total = node.total_admission_share(
            now, extra=[(est_time, job.remaining_deadline(now))]
        )
        if total <= 1.0 + CAPACITY_EPSILON:
            raise AssertionError(
                f"over-commitment certificate contradicted by the Eq. 2 walk on "
                f"node {node.node_id} for job {job.job_id} at t={now:.6g}"
            )

    def _finish(
        self,
        job: Job,
        suitable: list[tuple[float, TimeSharedNode]],
        online: int,
        now: float,
    ) -> None:
        if len(suitable) < job.numproc:
            self._reject(
                job,
                f"only {len(suitable)} of {job.numproc} required nodes have "
                f"capacity (Σ share > 1 on {online - len(suitable)}/{online} "
                f"online nodes)",
                suitable=len(suitable),
                required=job.numproc,
                online=online,
            )
            return

        # Best fit: highest post-acceptance total share first (least
        # available processor time remaining), ties by node id.
        suitable.sort(key=lambda pair: (-pair[0], pair[1].node_id))
        chosen = [node for _, node in suitable[: job.numproc]]
        self._allocate(job, chosen, now)

    def _allocate(self, job: Job, nodes: list[TimeSharedNode], now: float) -> None:
        assert self.cluster is not None and self.rms is not None
        work = self.cluster.work_of(job.runtime)
        est_work = self.cluster.work_of(job.estimated_runtime)
        job.mark_running(now, [n.node_id for n in nodes])
        self._track(job)
        self.rms.notify_accepted(job)
        for node in nodes:
            node.add_task(job, work=work, est_work=est_work, now=now)
