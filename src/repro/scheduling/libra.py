"""Libra: deadline-based proportional processor share admission (§3.1).

A new job ``new`` requiring ``numproc_new`` nodes is admitted iff there
are at least ``numproc_new`` nodes ``j`` for which the Eq. 2 total
share — including the new job's Eq. 1 share
``estimated_runtime / deadline`` — does not exceed the node's capacity
of 1.  Accepted jobs start immediately at their allocated shares.

Node selection is **best fit**: "nodes that have the least available
processor time after accepting the new job will be selected first so
that nodes are saturated to their maximum" (§3.3).  That saturation is
exactly what makes Libra fragile to estimate error, which LibraRisk
then fixes.

The ``expired_job_share_mode`` knob controls how Libra's Eq. 2 sum
sees resident jobs whose state the estimate can no longer describe —
an overrunning job (estimate exhausted) or one whose deadline has
already passed.  Eq. 1 is undefined for them; the default ``"zero"``
simply omits them, reproducing the blindness the paper attributes to
Libra ("it relies heavily on the idealistic assumption of accurate
runtime estimates").
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.node import TimeSharedNode
from repro.scheduling.base import SchedulingPolicy

#: Slack for float error in the Σ share <= 1 capacity test.
CAPACITY_EPSILON = 1e-9


class LibraPolicy(SchedulingPolicy):
    """Deadline-based proportional-share admission with best-fit placement."""

    name = "libra"
    discipline = "time_shared"

    def __init__(self, expired_job_share_mode: str = "zero") -> None:
        super().__init__()
        if expired_job_share_mode not in ("zero", "floor", "infinite"):
            raise ValueError(f"unknown expired_job_share_mode {expired_job_share_mode!r}")
        self.expired_job_share_mode = expired_job_share_mode

    def validate_cluster(self, cluster: Cluster) -> None:
        for node in cluster:
            if not isinstance(node, TimeSharedNode):
                raise TypeError(
                    f"{self.name} requires time-shared nodes; node {node.node_id} "
                    f"is {type(node).__name__}"
                )

    # -- admission ----------------------------------------------------------
    def on_job_submitted(self, job: Job, now: float) -> None:
        assert self.cluster is not None and self.rms is not None
        suitable: list[tuple[float, TimeSharedNode]] = []
        for node in self.cluster:
            assert isinstance(node, TimeSharedNode)
            if not node.online:
                continue
            node.sync(now)  # bring work ledgers to `now` before reading shares
            est_time = self.cluster.est_time_on(node, job.estimated_runtime)
            total = node.total_admission_share(
                now,
                extra=[(est_time, job.remaining_deadline(now))],
                expired_job_share_mode=self.expired_job_share_mode,
            )
            if total <= 1.0 + CAPACITY_EPSILON:
                suitable.append((total, node))

        if len(suitable) < job.numproc:
            online = sum(1 for n in self.cluster if n.online)
            self._reject(
                job,
                f"only {len(suitable)} of {job.numproc} required nodes have "
                f"capacity (Σ share > 1 on {online - len(suitable)}/{online} "
                f"online nodes)",
                suitable=len(suitable),
                required=job.numproc,
                online=online,
            )
            return

        # Best fit: highest post-acceptance total share first (least
        # available processor time remaining), ties by node id.
        suitable.sort(key=lambda pair: (-pair[0], pair[1].node_id))
        chosen = [node for _, node in suitable[: job.numproc]]
        self._allocate(job, chosen, now)

    def _allocate(self, job: Job, nodes: list[TimeSharedNode], now: float) -> None:
        assert self.cluster is not None and self.rms is not None
        work = self.cluster.work_of(job.runtime)
        est_work = self.cluster.work_of(job.estimated_runtime)
        job.mark_running(now, [n.node_id for n in nodes])
        self._track(job)
        self.rms.notify_accepted(job)
        for node in nodes:
            node.add_task(job, work=work, est_work=est_work, now=now)
