"""Libra: deadline-based proportional processor share admission (§3.1).

A new job ``new`` requiring ``numproc_new`` nodes is admitted iff there
are at least ``numproc_new`` nodes ``j`` for which the Eq. 2 total
share — including the new job's Eq. 1 share
``estimated_runtime / deadline`` — does not exceed the node's capacity
of 1.  Accepted jobs start immediately at their allocated shares.

Node selection is **best fit**: "nodes that have the least available
processor time after accepting the new job will be selected first so
that nodes are saturated to their maximum" (§3.3).  That saturation is
exactly what makes Libra fragile to estimate error, which LibraRisk
then fixes.

The ``expired_job_share_mode`` knob controls how Libra's Eq. 2 sum
sees resident jobs whose state the estimate can no longer describe —
an overrunning job (estimate exhausted) or one whose deadline has
already passed.  Eq. 1 is undefined for them; the default ``"zero"``
simply omits them, reproducing the blindness the paper attributes to
Libra ("it relies heavily on the idealistic assumption of accurate
runtime estimates").
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.node import TimeSharedNode
from repro.cluster.share import WORK_EPSILON
from repro.scheduling.base import SchedulingPolicy

#: Slack for float error in the Σ share <= 1 capacity test.
CAPACITY_EPSILON = 1e-9


class LibraPolicy(SchedulingPolicy):
    """Deadline-based proportional-share admission with best-fit placement."""

    name = "libra"
    discipline = "time_shared"

    def __init__(self, expired_job_share_mode: str = "zero") -> None:
        super().__init__()
        if expired_job_share_mode not in ("zero", "floor", "infinite"):
            raise ValueError(f"unknown expired_job_share_mode {expired_job_share_mode!r}")
        self.expired_job_share_mode = expired_job_share_mode

    def validate_cluster(self, cluster: Cluster) -> None:
        for node in cluster:
            if not isinstance(node, TimeSharedNode):
                raise TypeError(
                    f"{self.name} requires time-shared nodes; node {node.node_id} "
                    f"is {type(node).__name__}"
                )

    # -- admission ----------------------------------------------------------
    def on_job_submitted(self, job: Job, now: float) -> None:
        # The inlined fast scan only replicates the default "zero" Eq. 2
        # semantics; the research knobs take the reference path.
        if self.fast_path and self.expired_job_share_mode == "zero":
            self._submit_fast(job, now)
        else:
            self._submit_reference(job, now)

    def _submit_reference(self, job: Job, now: float) -> None:
        """Pre-cache admission scan, kept verbatim as the escape hatch
        (``REPRO_DISABLE_ADMISSION_CACHE=1``) and for the non-default
        ``expired_job_share_mode`` values."""
        assert self.cluster is not None and self.rms is not None
        suitable: list[tuple[float, TimeSharedNode]] = []
        for node in self.cluster:
            assert isinstance(node, TimeSharedNode)
            if not node.online:
                continue
            node.sync(now)  # bring work ledgers to `now` before reading shares
            est_time = self.cluster.est_time_on(node, job.estimated_runtime)
            total = node.total_admission_share(
                now,
                extra=[(est_time, job.remaining_deadline(now))],
                expired_job_share_mode=self.expired_job_share_mode,
            )
            if total <= 1.0 + CAPACITY_EPSILON:
                suitable.append((total, node))

        online = sum(1 for n in self.cluster if n.online)
        self._finish(job, suitable, online, now)

    def _submit_fast(self, job: Job, now: float) -> None:
        """The ``"zero"``-mode scan with ``total_admission_share``
        inlined: same skip rule, same summation order, bit-identical
        totals — but no per-node method dispatch, no extra-pair list,
        and no sync calls on idle nodes (an empty node's sync is a pure
        no-op).  A job whose deadline already passed gets an infinite
        Eq. 1 share on every node, so the scan degenerates to the online
        count."""
        cluster = self.cluster
        assert cluster is not None and self.rms is not None
        lazy = self.lazy_sync
        suitable: list[tuple[float, TimeSharedNode]] = []
        online = 0
        rem_new = job.remaining_deadline(now)
        feasible = rem_new > 0.0
        # est_time_on(node, est) = (est * reference_rating) / rating.
        est_work_new = job.estimated_runtime * cluster.reference_rating

        for node in cluster.nodes:
            if not node.online:
                continue
            online += 1
            tasks = node.tasks
            if tasks and not lazy:
                node.sync(now)
            if not feasible:
                continue  # admission_share(·, rem <= 0) = inf on every node
            rating = node.rating
            work_threshold = WORK_EPSILON / rating
            total = 0.0
            if lazy:
                speed = rating * (now - node._last_sync)
            for task in tasks.values():
                if lazy:
                    est_work = task.remaining_est_work - task.rate * speed
                    if est_work < 0.0:
                        est_work = 0.0
                    est = est_work / rating
                else:
                    est = task.remaining_est_work / rating
                rem = task.deadline - now
                if est <= work_threshold or rem <= 0.0:
                    continue  # "zero" mode: expired/exhausted jobs vanish
                total += est / rem
            total += (est_work_new / rating) / rem_new
            if total <= 1.0 + CAPACITY_EPSILON:
                suitable.append((total, node))

        stats = self.cache_stats
        stats["online_scans"] = stats.get("online_scans", 0) + online
        stats["inline_share_sums"] = (
            stats.get("inline_share_sums", 0) + (online if feasible else 0)
        )
        self._finish(job, suitable, online, now)

    def _finish(
        self,
        job: Job,
        suitable: list[tuple[float, TimeSharedNode]],
        online: int,
        now: float,
    ) -> None:
        if len(suitable) < job.numproc:
            self._reject(
                job,
                f"only {len(suitable)} of {job.numproc} required nodes have "
                f"capacity (Σ share > 1 on {online - len(suitable)}/{online} "
                f"online nodes)",
                suitable=len(suitable),
                required=job.numproc,
                online=online,
            )
            return

        # Best fit: highest post-acceptance total share first (least
        # available processor time remaining), ties by node id.
        suitable.sort(key=lambda pair: (-pair[0], pair[1].node_id))
        chosen = [node for _, node in suitable[: job.numproc]]
        self._allocate(job, chosen, now)

    def _allocate(self, job: Job, nodes: list[TimeSharedNode], now: float) -> None:
        assert self.cluster is not None and self.rms is not None
        work = self.cluster.work_of(job.runtime)
        est_work = self.cluster.work_of(job.estimated_runtime)
        job.mark_running(now, [n.node_id for n in nodes])
        self._track(job)
        self.rms.notify_accepted(job)
        for node in nodes:
            node.add_task(job, work=work, est_work=est_work, now=now)
