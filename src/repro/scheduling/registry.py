"""Name-based policy construction for the CLI and experiment harness."""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.scheduling.backfill import EasyBackfillPolicy
from repro.scheduling.conservative import ConservativePolicy
from repro.scheduling.base import SchedulingPolicy
from repro.scheduling.edf import EDFPolicy
from repro.scheduling.fcfs import FCFSPolicy
from repro.scheduling.libra import LibraPolicy
from repro.scheduling.librarisk import LibraRiskPolicy
from repro.scheduling.slack import SlackAdmissionPolicy

_REGISTRY: Dict[str, Callable[..., SchedulingPolicy]] = {
    EDFPolicy.name: EDFPolicy,
    FCFSPolicy.name: FCFSPolicy,
    LibraPolicy.name: LibraPolicy,
    LibraRiskPolicy.name: LibraRiskPolicy,
    EasyBackfillPolicy.name: EasyBackfillPolicy,
    ConservativePolicy.name: ConservativePolicy,
    SlackAdmissionPolicy.name: SlackAdmissionPolicy,
}


def _economy_policies() -> None:
    """Register the economy extension lazily (avoids an import cycle)."""
    if "libra-budget" in _REGISTRY:
        return
    from repro.economy.budget import LibraBudgetPolicy

    _REGISTRY[LibraBudgetPolicy.name] = LibraBudgetPolicy


def available_policies() -> list[str]:
    """Names of all registered admission-control policies."""
    _economy_policies()
    return sorted(_REGISTRY)


def make_policy(name: str, **kwargs: Any) -> SchedulingPolicy:
    """Instantiate a policy by registry name.

    >>> make_policy("librarisk").name
    'librarisk'
    """
    _economy_policies()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        ) from None
    return factory(**kwargs)


def register_policy(factory: Callable[..., SchedulingPolicy]) -> None:
    """Register a custom policy class (its ``name`` attribute is the key).

    Allows downstream users to plug their own admission control into the
    experiment harness and CLI without modifying this package.
    """
    name = getattr(factory, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError("policy factory must expose a non-empty string 'name' attribute")
    if name in _REGISTRY:
        raise ValueError(f"policy name {name!r} already registered")
    _REGISTRY[name] = factory


def policy_discipline(name: str) -> str:
    """Node discipline ('space_shared'/'time_shared') a policy requires."""
    _economy_policies()
    try:
        return _REGISTRY[name].discipline  # type: ignore[union-attr]
    except KeyError:
        raise ValueError(f"unknown policy {name!r}") from None
