"""Write-ahead log and crash recovery for the admission service.

The service's hard promise is that an admission decision, once acked,
is never lost or re-decided differently — even across ``kill -9``.  The
mechanism is the classic one: every state-mutating protocol request
(``submit``/``advance``/``drain``) is durably appended here *before* it
is applied to the engine, and recovery replays the log on top of the
latest checkpoint.  Because the engine is deterministic (see
:mod:`repro.service.engine`), replaying the same request sequence from
the same base state reproduces byte-identical engine state and metrics.

On-disk format
--------------
A UTF-8 text file of newline-terminated records, each individually
checksummed::

    <crc32 as 8 hex chars> <canonical JSON payload>\\n

The first record is a header identifying the log and pinning the
engine configuration it belongs to::

    {"format": "repro-admission-wal", "version": 1, "config": {...}}

Every subsequent record wraps one protocol request::

    {"lsn": 7, "t": 1041.5, "clamp": false, "req": {"v": 1, "type": ...}}

* ``lsn`` — monotonically increasing log sequence number (1-based);
  checkpoints store the last applied LSN so recovery can skip the
  already-materialised prefix.
* ``t`` — the engine clock at append time.  Replay advances the kernel
  here first, which reproduces the effect of live-clock ``poll()``
  without having to log wall time.
* ``clamp`` — whether the server would have clamped a stale submit
  time (live clocks do); replay passes the same flag.

Torn tails
----------
A crash can tear the *last* record mid-write.  Readers treat an
invalid **final** record (short line, bad checksum, truncated JSON) as
a torn tail: the valid prefix is recovered and the tail is reported
(and truncated before the next append).  An invalid record anywhere
*before* the final one cannot be explained by a crash and raises
:class:`WalCorruptionError` — silently skipping interior records would
violate the replay-order contract.

Fsync policy
------------
``fsync="always"`` (the default) makes every append durable before it
is acknowledged — this is the mode under which the kill-and-recover
guarantee holds.  ``"batch"`` fsyncs every ``batch_size`` appends (and
on close), trading the tail of the log for throughput; ``"none"``
leaves durability to the OS page cache.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster.job import reserve_job_ids
from repro.obs.log import get_logger
from repro.service import protocol
from repro.service.engine import AdmissionEngine, EngineConfig, EngineError
from repro.service.protocol import ProtocolError

log = get_logger("service.wal")

#: Identifies a WAL file (first record's ``format`` field).
WAL_FORMAT = "repro-admission-wal"

#: Bumped whenever the record schema changes incompatibly.
WAL_VERSION = 1

#: Allowed fsync policies.
FSYNC_POLICIES = ("always", "batch", "none")

#: Request types that mutate engine state and therefore must be logged.
MUTATING_TYPES = frozenset({"submit", "advance", "drain"})


class WalError(ValueError):
    """Raised for WAL misuse or unreadable log files."""


class WalCorruptionError(WalError):
    """An interior record is invalid — the log cannot be trusted."""


def _frame(payload: dict[str, Any]) -> bytes:
    """One wire record: crc32 of the canonical JSON, space, JSON, newline."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False,
        allow_nan=False,
    ).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x " % crc + body + b"\n"


def _parse_line(line: bytes) -> dict[str, Any]:
    """Decode one framed record; raises ``ValueError`` on any defect."""
    if not line.endswith(b"\n"):
        raise ValueError("record is not newline-terminated")
    if len(line) < 10 or line[8:9] != b" ":
        raise ValueError("record frame is too short")
    expected = int(line[:8], 16)
    body = line[9:-1]
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if actual != expected:
        raise ValueError(
            f"checksum mismatch (stored {expected:08x}, computed {actual:08x})"
        )
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("record payload is not a JSON object")
    return payload


@dataclass(frozen=True)
class WalRecord:
    """One replayable request as read back from the log."""

    lsn: int
    t: float
    req: dict[str, Any]
    clamp: bool = False


@dataclass
class WalReadResult:
    """Everything a reader learned from one pass over a log file."""

    header: dict[str, Any]
    records: list[WalRecord]
    #: Byte offset of the end of the last *valid* record (truncation point).
    valid_bytes: int
    #: Human-readable description of a torn tail, or ``None`` if clean.
    torn: Optional[str] = None

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else 0


def _read_bytes(path: str) -> bytes:
    try:
        with open(path, "rb") as fp:
            return fp.read()
    except OSError as exc:
        raise WalError(f"cannot read WAL {path}: {exc}") from exc


def discard_torn_header(path: str) -> bool:
    """Reset a WAL holding only a torn header line; returns True if reset.

    A crash during the very first header write leaves a single
    unterminated line.  Records only ever follow a newline-terminated
    header, so nothing can have been acked from such a file — it is
    safe (and far kinder than failing until an operator deletes it by
    hand) to truncate it to empty and start over.  Files that are
    missing, empty, or contain any newline are left untouched.
    """
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return False
    if b"\n" in _read_bytes(path):
        return False
    log.warning(
        "%s: discarding torn header-only WAL (no record was ever acked)", path
    )
    with open(path, "r+b") as fp:
        fp.truncate(0)
        fp.flush()
        os.fsync(fp.fileno())
    return True


def read_wal(path: str) -> WalReadResult:
    """Read and validate a WAL file, tolerating a torn final record.

    Raises
    ------
    WalError
        If the file is missing, empty, or has a bad header.
    WalCorruptionError
        If a record *before* the final one is invalid.
    """
    raw = _read_bytes(path)
    if not raw:
        raise WalError(f"{path}: empty WAL file (missing header)")

    lines = raw.split(b"\n")
    # split() leaves a trailing "" when the file ends in \n; anything else
    # in the last slot is an unterminated (torn) final line.
    trailing = lines.pop()
    framed = [line + b"\n" for line in lines]
    if trailing:
        framed.append(trailing)  # deliberately unterminated

    header: Optional[dict[str, Any]] = None
    records: list[WalRecord] = []
    offset = 0
    torn: Optional[str] = None
    for index, line in enumerate(framed):
        is_last = index == len(framed) - 1
        try:
            payload = _parse_line(line)
            if index == 0:
                header = _check_header(path, payload)
            else:
                records.append(_record_from(path, payload, records))
        except WalError:
            # Header defects and LSN sequence breaks survive checksumming,
            # so they cannot be explained by a torn write — always fatal.
            raise
        except ValueError as exc:
            if index == 0:
                raise WalError(f"{path}: unreadable WAL header ({exc})") from exc
            if not is_last:
                raise WalCorruptionError(
                    f"{path}: record {index} is invalid before the end of the "
                    f"log ({exc}); refusing to replay an untrustworthy log"
                ) from exc
            torn = f"record {index} ({exc})"
            break
        offset += len(line)
    assert header is not None
    return WalReadResult(header=header, records=records, valid_bytes=offset, torn=torn)


def _check_header(path: str, payload: dict[str, Any]) -> dict[str, Any]:
    if payload.get("format") != WAL_FORMAT:
        raise WalError(f"{path}: not a WAL file (format={payload.get('format')!r})")
    if payload.get("version") != WAL_VERSION:
        raise WalError(
            f"{path}: unsupported WAL version {payload.get('version')!r} "
            f"(this build reads v{WAL_VERSION})"
        )
    return payload


def _record_from(
    path: str, payload: dict[str, Any], earlier: list[WalRecord]
) -> WalRecord:
    try:
        record = WalRecord(
            lsn=int(payload["lsn"]),
            t=float(payload["t"]),
            req=dict(payload["req"]),
            clamp=bool(payload.get("clamp", False)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed record payload: {exc}") from exc
    expected = earlier[-1].lsn + 1 if earlier else 1
    if record.lsn != expected:
        raise WalError(
            f"{path}: LSN sequence broken (expected {expected}, got {record.lsn})"
        )
    return record


class WriteAheadLog:
    """Appender half of the log: durable, checksummed, crash-tolerant.

    Use :meth:`open` — it creates a fresh log (writing the header) or
    re-opens an existing one, validating its header against ``config``
    and truncating a torn tail so appends continue from a clean
    prefix.

    Write failures (``ENOSPC``, ``EIO``) never leave torn bytes in the
    *middle* of the log: a failed append is truncated back to the end
    of the last good record before any later append is accepted, and if
    that rollback itself fails — or an fsync fails, leaving durability
    of already-acked records unknowable — the log is marked
    :attr:`failed` and refuses every further append, so nothing can be
    acked against a file recovery would reject.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "always",
        batch_size: int = 64,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        if batch_size < 1:
            raise WalError("batch_size must be >= 1")
        self.path = path
        self.fsync = fsync
        self.batch_size = int(batch_size)
        self.next_lsn = 1
        self.appended = 0
        self.bytes_written = 0
        self.syncs = 0
        #: Permanently broken (failed rollback or fsync); appends refused.
        self.failed = False
        self._unsynced = 0
        #: File offset of the end of the last fully-written frame — the
        #: truncation point if a later frame write fails partway.
        self._good_offset = 0
        self._fp: Optional[Any] = None

    # -- lifecycle ----------------------------------------------------------
    @classmethod
    def open(  # repro-lint: safe=CONC001  constructs the WAL before it is published
        cls,
        path: str,
        config: Optional[dict[str, Any]] = None,
        fsync: str = "always",
        batch_size: int = 64,
    ) -> "WriteAheadLog":
        """Create or re-open ``path`` for appending.

        A new file gets a header carrying ``config``; an existing file
        must have a matching header (serving a different cluster from
        the same log would make replay nonsense), and a torn tail is
        truncated away before the first append.
        """
        wal = cls(path, fsync=fsync, batch_size=batch_size)
        if discard_torn_header(path):
            exists = False
        else:
            exists = os.path.exists(path) and os.path.getsize(path) > 0
        if exists:
            result = read_wal(path)
            if config is not None and result.header.get("config") not in (None, config):
                raise WalError(
                    f"{path}: WAL belongs to a different engine config; "
                    f"refusing to append (use a fresh log per configuration)"
                )
            if result.torn is not None:
                log.warning(
                    "%s: truncating torn tail at byte %d (%s)",
                    path, result.valid_bytes, result.torn,
                )
                with open(path, "r+b") as fp:
                    fp.truncate(result.valid_bytes)
                    fp.flush()
                    os.fsync(fp.fileno())
            wal.next_lsn = result.last_lsn + 1
            wal._fp = open(path, "ab", buffering=0)
            wal._good_offset = result.valid_bytes
        else:
            wal._fp = open(path, "ab", buffering=0)
            header: dict[str, Any] = {"format": WAL_FORMAT, "version": WAL_VERSION}
            if config is not None:
                header["config"] = config
            wal._write(_frame(header))
            wal._sync()
        return wal

    @property
    def closed(self) -> bool:
        return self._fp is None

    def close(self) -> None:
        """Flush, fsync, and close; safe to call twice."""
        if self._fp is None:
            return
        self._sync()
        self._fp.close()
        self._fp = None

    # -- appending ----------------------------------------------------------
    def append(self, t: float, req: dict[str, Any], clamp: bool = False) -> int:
        """Durably log one request; returns its assigned LSN.

        Under ``fsync="always"`` the record is on disk when this
        returns — which is exactly what lets the caller ack the
        decision afterwards.
        """
        if self.failed:
            raise WalError(
                f"{self.path}: WAL failed permanently after a write error; "
                f"refusing to ack records against an untrustworthy log"
            )
        if self._fp is None:
            raise WalError(f"{self.path}: WAL is closed")
        lsn = self.next_lsn
        payload = {"lsn": lsn, "t": float(t), "req": req}
        if clamp:
            payload["clamp"] = True
        self._write(_frame(payload))
        self.next_lsn = lsn + 1
        self.appended += 1
        self._unsynced += 1
        if self.fsync == "always" or (
            self.fsync == "batch" and self._unsynced >= self.batch_size
        ):
            self._sync()
        return lsn

    def sync(self) -> None:
        """Force everything appended so far onto disk."""
        if self._fp is not None:
            self._sync()

    def _write(self, frame: bytes) -> None:
        """Write one whole frame (unbuffered fd), rolling back any tear."""
        assert self._fp is not None
        view = memoryview(frame)
        try:
            while view:
                written = self._fp.write(view)
                view = view[written:]
        except OSError:
            self._rollback()
            raise
        self.bytes_written += len(frame)
        self._good_offset += len(frame)

    def _rollback(self) -> None:
        """A frame tore mid-write: cut it off, or fail the log for good.

        Truncating back to the last good frame keeps the file valid so
        later appends (after the caller surfaces the error un-acked)
        land on a clean prefix instead of after garbage — which would
        be interior corruption that recovery rightly refuses to replay.
        """
        assert self._fp is not None
        try:
            os.ftruncate(self._fp.fileno(), self._good_offset)
            os.fsync(self._fp.fileno())
        except OSError as exc:
            self._fail(f"could not truncate a torn append ({exc})")

    def _fail(self, reason: str) -> None:
        """Mark the log permanently unusable; every later append raises."""
        self.failed = True
        log.error("%s: WAL failed permanently: %s", self.path, reason)
        if self._fp is not None:
            try:
                self._fp.close()
            except OSError:
                pass
            self._fp = None

    def _sync(self) -> None:
        assert self._fp is not None
        if self._unsynced or self.syncs == 0:
            try:
                os.fsync(self._fp.fileno())
            except OSError as exc:
                # Post-fsync-failure page-cache state is unknowable; no
                # further record may be acked against this file.
                self._fail(f"fsync failed ({exc})")
                raise
            self.syncs += 1
            self._unsynced = 0

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WriteAheadLog path={self.path!r} fsync={self.fsync} "
            f"next_lsn={self.next_lsn} appended={self.appended}>"
        )


# -- recovery -----------------------------------------------------------------

@dataclass
class RecoveryReport:
    """What one recovery pass did, for operators and tests."""

    wal_records: int = 0
    replayed: int = 0
    skipped: int = 0
    failed: int = 0
    last_lsn: int = 0
    torn: Optional[str] = None
    checkpoint: Optional[str] = None
    horizon: float = 0.0
    outcomes: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "wal_records": self.wal_records,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "failed": self.failed,
            "last_lsn": self.last_lsn,
            "horizon": self.horizon,
            "outcomes": dict(self.outcomes),
        }
        if self.torn is not None:
            out["torn"] = self.torn
        if self.checkpoint is not None:
            out["checkpoint"] = self.checkpoint
        return out

    def __str__(self) -> str:
        base = (
            f"recovered {self.replayed}/{self.wal_records} WAL records "
            f"(skipped {self.skipped} before checkpoint, {self.failed} failed "
            f"applications) to t={self.horizon:.6g}s"
        )
        if self.torn is not None:
            base += f"; torn tail dropped: {self.torn}"
        return base


def apply_record(engine: AdmissionEngine, record: WalRecord) -> Optional[str]:
    """Re-apply one logged request to ``engine``.

    Returns the submit outcome (``accepted``/``queued``/``rejected``)
    for submit records, ``None`` otherwise.  Raises the same engine or
    protocol errors the original application raised — callers replaying
    a log should count those as (deterministically) failed
    applications, not abort.
    """
    # Reproduce the pre-apply clock position (live servers poll() before
    # every request; `t` is the engine clock the original apply saw).
    if record.t > engine.now:
        engine.advance(record.t)
    request = protocol.parse_request(record.req)
    if isinstance(request, protocol.SubmitRequest):
        job = protocol.job_from_payload(request.job, default_submit_time=record.t)
        # The frame carries the trace id the original run minted (when
        # telemetry was on); reusing it keeps recovered traces
        # byte-identical to the uncrashed run.
        decision = engine.submit(
            job, clamp_past=record.clamp, trace=request.trace
        )
        engine.wal_lsns[job.job_id] = record.lsn
        return decision.outcome
    if isinstance(request, protocol.AdvanceRequest):
        engine.advance(request.to)
        return None
    if isinstance(request, protocol.DrainRequest):
        engine.drain()
        return None
    raise WalError(
        f"WAL record lsn={record.lsn} holds non-mutating request "
        f"{record.req.get('type')!r}"
    )


def recover(  # repro-lint: safe=CONC001  replays into a private engine before any thread sees it
    wal_path: str,
    checkpoint_path: Optional[str] = None,
    clock: Optional[Any] = None,
    obs: Optional[Any] = None,
) -> tuple[AdmissionEngine, RecoveryReport]:
    """Rebuild an engine from ``checkpoint_path`` (optional) + the WAL.

    Records at or below the checkpoint's recorded LSN are skipped; the
    rest are replayed in order.  Applications that failed originally
    (duplicate ids, out-of-order submits) fail identically on replay
    and are counted, preserving the exact original state.
    """
    result = read_wal(wal_path)
    report = RecoveryReport(
        wal_records=len(result.records),
        torn=result.torn,
        checkpoint=checkpoint_path,
        last_lsn=result.last_lsn,
    )

    if checkpoint_path is not None:
        from repro.service import checkpoint as checkpoint_mod

        engine = checkpoint_mod.load(checkpoint_path, clock=clock, obs=obs)
    else:
        config = result.header.get("config")
        if config is None:
            raise WalError(
                f"{wal_path}: WAL header carries no engine config and no "
                f"checkpoint was given; cannot rebuild an engine"
            )
        engine = AdmissionEngine(EngineConfig.from_dict(config), clock=clock, obs=obs)

    start_lsn = engine.wal_lsn
    for record in result.records:
        if record.lsn <= start_lsn:
            report.skipped += 1
            continue
        try:
            outcome = apply_record(engine, record)
        except (EngineError, ProtocolError) as exc:
            report.failed += 1
            log.debug("replay of lsn=%d failed as it originally did: %s",
                      record.lsn, exc)
        else:
            if outcome is not None:
                report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
            report.replayed += 1
        finally:
            engine.wal_lsn = record.lsn
    # Jobs were rebuilt under their original explicit ids without
    # touching the auto-id counter; advance it so a fresh submit
    # without an id can never collide with a recovered job.
    reserve_job_ids(max(engine._known_ids, default=0))
    report.horizon = engine.now
    log.info("%s", report)
    return engine, report


__all__ = [
    "FSYNC_POLICIES",
    "MUTATING_TYPES",
    "RecoveryReport",
    "WAL_FORMAT",
    "WAL_VERSION",
    "WalCorruptionError",
    "WalError",
    "WalReadResult",
    "WalRecord",
    "WriteAheadLog",
    "apply_record",
    "discard_torn_header",
    "read_wal",
    "recover",
]
