"""Write-ahead log and crash recovery for the admission service.

The service's hard promise is that an admission decision, once acked,
is never lost or re-decided differently — even across ``kill -9``.  The
mechanism is the classic one: every state-mutating protocol request
(``submit``/``advance``/``drain``) is durably appended here *before* it
is applied to the engine, and recovery replays the log on top of the
latest checkpoint.  Because the engine is deterministic (see
:mod:`repro.service.engine`), replaying the same request sequence from
the same base state reproduces byte-identical engine state and metrics.

On-disk format
--------------
A UTF-8 text file of newline-terminated records, each individually
checksummed::

    <crc32 as 8 hex chars> <canonical JSON payload>\\n

The first record is a header identifying the log and pinning the
engine configuration it belongs to::

    {"format": "repro-admission-wal", "version": 1, "config": {...}}

Every subsequent record wraps one protocol request::

    {"lsn": 7, "t": 1041.5, "clamp": false, "req": {"v": 1, "type": ...}}

* ``lsn`` — monotonically increasing log sequence number (1-based);
  checkpoints store the last applied LSN so recovery can skip the
  already-materialised prefix.
* ``t`` — the engine clock at append time.  Replay advances the kernel
  here first, which reproduces the effect of live-clock ``poll()``
  without having to log wall time.
* ``clamp`` — whether the server would have clamped a stale submit
  time (live clocks do); replay passes the same flag.

Torn tails
----------
A crash can tear the *last* record mid-write.  Readers treat an
invalid **final** record (short line, bad checksum, truncated JSON) as
a torn tail: the valid prefix is recovered and the tail is reported
(and truncated before the next append).  An invalid record anywhere
*before* the final one cannot be explained by a crash and raises
:class:`WalCorruptionError` — silently skipping interior records would
violate the replay-order contract.

Fsync policy
------------
``fsync="always"`` (the default) makes every append durable before it
is acknowledged — this is the mode under which the kill-and-recover
guarantee holds.  ``"batch"`` fsyncs every ``batch_size`` appends (and
on close), trading the tail of the log for throughput; ``"none"``
leaves durability to the OS page cache.

Compaction
----------
Logs would otherwise grow without bound, so :meth:`WriteAheadLog.compact`
anchors the log on a checkpoint: it snapshots the engine, moves every
record at or below the engine's applied LSN into an **archive segment**
(``<wal>.seg<first>-<last>``, same framed format, atomically renamed),
and rewrites the live log to a short tail whose header carries
``base_lsn`` (records resume at ``base_lsn + 1``) and a ``checkpoint``
reference (path + SHA-256).  :func:`recover` chains the referenced
checkpoint transparently, so a compacted log restores byte-identically
to replaying the full history.  Every step is a whole-file write +
``os.replace``: a crash at any point leaves either the old layout or
the new one, never a hybrid.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.cluster.job import reserve_job_ids
from repro.obs.log import get_logger
from repro.service import protocol
from repro.service.engine import AdmissionEngine, EngineConfig, EngineError
from repro.service.protocol import ProtocolError

log = get_logger("service.wal")

#: Identifies a WAL file (first record's ``format`` field).
WAL_FORMAT = "repro-admission-wal"

#: Bumped whenever the record schema changes incompatibly.
WAL_VERSION = 1

#: Allowed fsync policies.
FSYNC_POLICIES = ("always", "batch", "none")

#: Request types that mutate engine state and therefore must be logged.
MUTATING_TYPES = frozenset({"submit", "advance", "drain"})

#: Archive segment suffix: ``<wal>.seg<first lsn>-<last lsn>`` (zero-padded).
_SEGMENT_RE = re.compile(r"\.seg(\d{8})-(\d{8})$")


class WalError(ValueError):
    """Raised for WAL misuse or unreadable log files."""


class WalCorruptionError(WalError):
    """An interior record is invalid — the log cannot be trusted."""


def _frame(payload: dict[str, Any]) -> bytes:
    """One wire record: crc32 of the canonical JSON, space, JSON, newline."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False,
        allow_nan=False,
    ).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x " % crc + body + b"\n"


def _parse_line(line: bytes) -> dict[str, Any]:
    """Decode one framed record; raises ``ValueError`` on any defect."""
    if not line.endswith(b"\n"):
        raise ValueError("record is not newline-terminated")
    if len(line) < 10 or line[8:9] != b" ":
        raise ValueError("record frame is too short")
    expected = int(line[:8], 16)
    body = line[9:-1]
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if actual != expected:
        raise ValueError(
            f"checksum mismatch (stored {expected:08x}, computed {actual:08x})"
        )
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("record payload is not a JSON object")
    return payload


@dataclass(frozen=True)
class WalRecord:
    """One replayable request as read back from the log."""

    lsn: int
    t: float
    req: dict[str, Any]
    clamp: bool = False


@dataclass
class WalReadResult:
    """Everything a reader learned from one pass over a log file."""

    header: dict[str, Any]
    records: list[WalRecord]
    #: Byte offset of the end of the last *valid* record (truncation point).
    valid_bytes: int
    #: Human-readable description of a torn tail, or ``None`` if clean.
    torn: Optional[str] = None

    @property
    def base_lsn(self) -> int:
        """Last LSN materialised by the compaction checkpoint (0 = none)."""
        return int(self.header.get("base_lsn", 0) or 0)

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else self.base_lsn


def _read_bytes(path: str) -> bytes:
    try:
        with open(path, "rb") as fp:
            return fp.read()
    except OSError as exc:
        raise WalError(f"cannot read WAL {path}: {exc}") from exc


def discard_torn_header(path: str) -> bool:
    """Reset a WAL holding only a torn header line; returns True if reset.

    A crash during the very first header write leaves a single
    unterminated line.  Records only ever follow a newline-terminated
    header, so nothing can have been acked from such a file — it is
    safe (and far kinder than failing until an operator deletes it by
    hand) to truncate it to empty and start over.  Files that are
    missing, empty, or contain any newline are left untouched.
    """
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return False
    if b"\n" in _read_bytes(path):
        return False
    log.warning(
        "%s: discarding torn header-only WAL (no record was ever acked)", path
    )
    with open(path, "r+b") as fp:
        fp.truncate(0)
        fp.flush()
        os.fsync(fp.fileno())
    return True


def read_wal(path: str) -> WalReadResult:
    """Read and validate a WAL file, tolerating a torn final record.

    Raises
    ------
    WalError
        If the file is missing, empty, or has a bad header.
    WalCorruptionError
        If a record *before* the final one is invalid.
    """
    raw = _read_bytes(path)
    if not raw:
        raise WalError(f"{path}: empty WAL file (missing header)")

    lines = raw.split(b"\n")
    # split() leaves a trailing "" when the file ends in \n; anything else
    # in the last slot is an unterminated (torn) final line.
    trailing = lines.pop()
    framed = [line + b"\n" for line in lines]
    if trailing:
        framed.append(trailing)  # deliberately unterminated

    header: Optional[dict[str, Any]] = None
    records: list[WalRecord] = []
    offset = 0
    base_lsn = 0
    torn: Optional[str] = None
    for index, line in enumerate(framed):
        is_last = index == len(framed) - 1
        try:
            payload = _parse_line(line)
            if index == 0:
                header = _check_header(path, payload)
                base_lsn = int(header.get("base_lsn", 0) or 0)
            else:
                records.append(_record_from(path, payload, records, base_lsn))
        except WalError:
            # Header defects and LSN sequence breaks survive checksumming,
            # so they cannot be explained by a torn write — always fatal.
            raise
        except ValueError as exc:
            if index == 0:
                raise WalError(f"{path}: unreadable WAL header ({exc})") from exc
            if not is_last:
                raise WalCorruptionError(
                    f"{path}: record {index} is invalid before the end of the "
                    f"log ({exc}); refusing to replay an untrustworthy log"
                ) from exc
            torn = f"record {index} ({exc})"
            break
        offset += len(line)
    assert header is not None
    return WalReadResult(header=header, records=records, valid_bytes=offset, torn=torn)


def _check_header(path: str, payload: dict[str, Any]) -> dict[str, Any]:
    if payload.get("format") != WAL_FORMAT:
        raise WalError(f"{path}: not a WAL file (format={payload.get('format')!r})")
    if payload.get("version") != WAL_VERSION:
        raise WalError(
            f"{path}: unsupported WAL version {payload.get('version')!r} "
            f"(this build reads v{WAL_VERSION})"
        )
    base = payload.get("base_lsn", 0)
    if not isinstance(base, int) or base < 0:
        raise WalError(f"{path}: invalid base_lsn {base!r} in WAL header")
    return payload


def _record_from(
    path: str,
    payload: dict[str, Any],
    earlier: list[WalRecord],
    base_lsn: int = 0,
) -> WalRecord:
    try:
        record = WalRecord(
            lsn=int(payload["lsn"]),
            t=float(payload["t"]),
            req=dict(payload["req"]),
            clamp=bool(payload.get("clamp", False)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed record payload: {exc}") from exc
    expected = earlier[-1].lsn + 1 if earlier else base_lsn + 1
    if record.lsn != expected:
        raise WalError(
            f"{path}: LSN sequence broken (expected {expected}, got {record.lsn})"
        )
    return record


def _record_payload(record: WalRecord) -> dict[str, Any]:
    """Invert :func:`_record_from`: byte-identical when re-framed."""
    payload: dict[str, Any] = {"lsn": record.lsn, "t": record.t, "req": record.req}
    if record.clamp:
        payload["clamp"] = True
    return payload


def list_segments(path: str) -> list[tuple[int, int, str]]:
    """Archive segments of ``path`` as sorted ``(first, last, seg_path)``.

    Segments are recognised purely by name
    (``<wal>.seg<first:08d>-<last:08d>``); contents are not validated
    here — that is :mod:`repro.service.scrub`'s job.
    """
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    out: list[tuple[int, int, str]] = []
    for name in names:
        if not name.startswith(base + ".seg"):
            continue
        match = _SEGMENT_RE.search(name)
        if match:
            out.append(
                (int(match.group(1)), int(match.group(2)),
                 os.path.join(directory, name))
            )
    out.sort()
    return out


def _write_file_atomic(path: str, data: bytes) -> None:
    """Whole-file write: tmp in the same directory, fsync, rename, dir fsync."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fp:
            fp.write(data)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass


class WriteAheadLog:
    """Appender half of the log: durable, checksummed, crash-tolerant.

    Use :meth:`open` — it creates a fresh log (writing the header) or
    re-opens an existing one, validating its header against ``config``
    and truncating a torn tail so appends continue from a clean
    prefix.

    Write failures (``ENOSPC``, ``EIO``) never leave torn bytes in the
    *middle* of the log: a failed append is truncated back to the end
    of the last good record before any later append is accepted, and if
    that rollback itself fails — or an fsync fails, leaving durability
    of already-acked records unknowable — the log is marked
    :attr:`failed` and refuses every further append, so nothing can be
    acked against a file recovery would reject.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "always",
        batch_size: int = 64,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        if batch_size < 1:
            raise WalError("batch_size must be >= 1")
        self.path = path
        self.fsync = fsync
        self.batch_size = int(batch_size)
        self.next_lsn = 1
        self.appended = 0
        self.bytes_written = 0
        self.syncs = 0
        #: Last LSN folded into the compaction checkpoint (0 = never compacted).
        self.base_lsn = 0
        #: Completed :meth:`compact` passes over this handle's lifetime.
        self.compactions = 0
        #: Permanently broken (failed rollback or fsync); appends refused.
        self.failed = False
        self._unsynced = 0
        #: File offset of the end of the last fully-written frame — the
        #: truncation point if a later frame write fails partway.
        self._good_offset = 0
        self._fp: Optional[Any] = None

    # -- lifecycle ----------------------------------------------------------
    @classmethod
    def open(  # repro-lint: safe=CONC001  constructs the WAL before it is published
        cls,
        path: str,
        config: Optional[dict[str, Any]] = None,
        fsync: str = "always",
        batch_size: int = 64,
    ) -> "WriteAheadLog":
        """Create or re-open ``path`` for appending.

        A new file gets a header carrying ``config``; an existing file
        must have a matching header (serving a different cluster from
        the same log would make replay nonsense), and a torn tail is
        truncated away before the first append.
        """
        wal = cls(path, fsync=fsync, batch_size=batch_size)
        if discard_torn_header(path):
            exists = False
        else:
            exists = os.path.exists(path) and os.path.getsize(path) > 0
        if exists:
            result = read_wal(path)
            if config is not None and result.header.get("config") not in (None, config):
                raise WalError(
                    f"{path}: WAL belongs to a different engine config; "
                    f"refusing to append (use a fresh log per configuration)"
                )
            if result.torn is not None:
                log.warning(
                    "%s: truncating torn tail at byte %d (%s)",
                    path, result.valid_bytes, result.torn,
                )
                with open(path, "r+b") as fp:
                    fp.truncate(result.valid_bytes)
                    fp.flush()
                    os.fsync(fp.fileno())
            wal.next_lsn = result.last_lsn + 1
            wal.base_lsn = result.base_lsn
            wal._fp = open(path, "ab", buffering=0)
            wal._good_offset = result.valid_bytes
        else:
            wal._fp = open(path, "ab", buffering=0)
            header: dict[str, Any] = {"format": WAL_FORMAT, "version": WAL_VERSION}
            if config is not None:
                header["config"] = config
            wal._write(_frame(header))
            wal._sync()
        return wal

    @property
    def closed(self) -> bool:
        return self._fp is None

    def close(self) -> None:
        """Flush, fsync, and close; safe to call twice."""
        if self._fp is None:
            return
        self._sync()
        self._fp.close()
        self._fp = None

    # -- appending ----------------------------------------------------------
    def append(self, t: float, req: dict[str, Any], clamp: bool = False) -> int:
        """Durably log one request; returns its assigned LSN.

        Under ``fsync="always"`` the record is on disk when this
        returns — which is exactly what lets the caller ack the
        decision afterwards.
        """
        if self.failed:
            raise WalError(
                f"{self.path}: WAL failed permanently after a write error; "
                f"refusing to ack records against an untrustworthy log"
            )
        if self._fp is None:
            raise WalError(f"{self.path}: WAL is closed")
        lsn = self.next_lsn
        payload = {"lsn": lsn, "t": float(t), "req": req}
        if clamp:
            payload["clamp"] = True
        self._write(_frame(payload))
        self.next_lsn = lsn + 1
        self.appended += 1
        self._unsynced += 1
        if self.fsync == "always" or (
            self.fsync == "batch" and self._unsynced >= self.batch_size
        ):
            self._sync()
        return lsn

    def sync(self) -> None:
        """Force everything appended so far onto disk."""
        if self._fp is not None:
            self._sync()

    # -- compaction ---------------------------------------------------------
    def compact(
        self,
        engine: Any,
        checkpoint_path: str,
        crash: Optional[Callable[[str], None]] = None,
    ) -> "CompactionReport":
        """Checkpoint ``engine`` and archive every record it has applied.

        Three crash-safe steps, each a whole-file write + atomic rename:

        1. snapshot the engine to ``checkpoint_path``
           (:func:`repro.service.checkpoint.save`);
        2. copy records with ``lsn <= engine.wal_lsn`` into an archive
           segment named ``<wal>.seg<first>-<last>``;
        3. replace the live log with a tail whose header carries
           ``base_lsn = engine.wal_lsn`` and a checkpoint reference
           (path + content SHA-256), keeping only not-yet-checkpointed
           records.

        A crash before step 3 leaves the full log intact (the new
        checkpoint and segment are redundant but harmless — stale
        segments are swept on the next pass); a crash after step 3
        leaves a compacted log that :func:`recover` chains through the
        referenced checkpoint.  Either way recovery is byte-identical.

        ``crash`` is the fault-injection hook (``compact.before_snapshot``,
        ``compact.after_snapshot``, ``compact.after_truncate``); pass
        :meth:`AdmissionService._crash` to make the windows drillable.
        """
        from repro.service import checkpoint as checkpoint_mod

        if self.failed:
            raise WalError(f"{self.path}: cannot compact a failed WAL")
        if self._fp is None:
            raise WalError(f"{self.path}: cannot compact a closed WAL")

        def hook(point: str) -> None:
            if crash is not None:
                crash(point)

        hook("compact.before_snapshot")
        doc = checkpoint_mod.save(engine, checkpoint_path)
        checkpoint_sha = str(doc["checksum"]["hex"])
        hook("compact.after_snapshot")

        compact_lsn = int(engine.wal_lsn)
        self._sync()
        result = read_wal(self.path)
        bytes_before = os.path.getsize(self.path)
        archived = [r for r in result.records if r.lsn <= compact_lsn]
        retained = [r for r in result.records if r.lsn > compact_lsn]
        report = CompactionReport(
            first_lsn=archived[0].lsn if archived else 0,
            last_lsn=compact_lsn,
            archived=len(archived),
            retained=len(retained),
            checkpoint=checkpoint_path,
            bytes_before=bytes_before,
            bytes_after=bytes_before,
        )
        if not archived:
            # Nothing the checkpoint newly covers — but the snapshot
            # above may have just overwritten the very checkpoint the
            # header references (a recovered engine re-derives kernel
            # sequence numbers, changing the content checksum), so the
            # stale reference must be refreshed before leaving the log
            # alone, or the next recovery would refuse the chain.
            old_ref = result.header.get("checkpoint")
            if isinstance(old_ref, dict):
                old_path = str(old_ref.get("path", ""))
                if not os.path.isabs(old_path):
                    old_path = os.path.join(
                        os.path.dirname(self.path) or ".", old_path
                    )
                if (
                    os.path.abspath(old_path) == os.path.abspath(checkpoint_path)
                    and old_ref.get("sha256") != checkpoint_sha
                ):
                    new_header = dict(result.header)
                    new_header["checkpoint"] = {
                        "path": old_ref.get("path"), "sha256": checkpoint_sha,
                    }
                    tail_bytes = b"".join(
                        [_frame(new_header)]
                        + [_frame(_record_payload(r)) for r in result.records]
                    )
                    self._fp.close()
                    self._fp = None
                    try:
                        _write_file_atomic(self.path, tail_bytes)
                    except BaseException:
                        self._fail("checkpoint reference refresh failed")
                        raise
                    self._fp = open(self.path, "ab", buffering=0)
                    self._good_offset = len(tail_bytes)
                    self._unsynced = 0
                    report.bytes_after = len(tail_bytes)
            hook("compact.after_truncate")
            return report

        # Sweep stale segments from an interrupted earlier pass: any
        # segment reaching past the current base still has all of its
        # records in the live log, so dropping it loses nothing.
        for _first, last, seg_path in list_segments(self.path):
            if last > self.base_lsn:
                try:
                    os.unlink(seg_path)
                except OSError:  # pragma: no cover - best-effort sweep
                    pass

        segment = f"{self.path}.seg{archived[0].lsn:08d}-{archived[-1].lsn:08d}"
        seg_header = dict(result.header)
        seg_header.pop("checkpoint", None)  # the reference moves with the tail
        _write_file_atomic(
            segment,
            b"".join([_frame(seg_header)]
                     + [_frame(_record_payload(r)) for r in archived]),
        )

        cp_abs = os.path.abspath(checkpoint_path)
        if os.path.dirname(cp_abs) == os.path.dirname(os.path.abspath(self.path)):
            ref_path = os.path.basename(checkpoint_path)
        else:
            ref_path = cp_abs
        tail_header: dict[str, Any] = {"format": WAL_FORMAT, "version": WAL_VERSION}
        if "config" in result.header:
            tail_header["config"] = result.header["config"]
        tail_header["base_lsn"] = compact_lsn
        tail_header["checkpoint"] = {"path": ref_path, "sha256": checkpoint_sha}
        tail_bytes = b"".join([_frame(tail_header)]
                              + [_frame(_record_payload(r)) for r in retained])
        self._fp.close()
        self._fp = None
        try:
            _write_file_atomic(self.path, tail_bytes)
        except BaseException:
            self._fail("compaction tail replace failed")
            raise
        self._fp = open(self.path, "ab", buffering=0)
        self._good_offset = len(tail_bytes)
        self._unsynced = 0
        self.base_lsn = compact_lsn
        self.compactions += 1
        report.segment = segment
        report.bytes_after = len(tail_bytes)
        log.info(
            "%s: compacted %d records (lsn<=%d) into %s; tail %d -> %d bytes",
            self.path, len(archived), compact_lsn, segment,
            bytes_before, len(tail_bytes),
        )
        hook("compact.after_truncate")
        return report

    def _write(self, frame: bytes) -> None:
        """Write one whole frame (unbuffered fd), rolling back any tear."""
        assert self._fp is not None
        view = memoryview(frame)
        try:
            while view:
                written = self._fp.write(view)
                view = view[written:]
        except OSError:
            self._rollback()
            raise
        self.bytes_written += len(frame)
        self._good_offset += len(frame)

    def _rollback(self) -> None:
        """A frame tore mid-write: cut it off, or fail the log for good.

        Truncating back to the last good frame keeps the file valid so
        later appends (after the caller surfaces the error un-acked)
        land on a clean prefix instead of after garbage — which would
        be interior corruption that recovery rightly refuses to replay.
        """
        assert self._fp is not None
        try:
            os.ftruncate(self._fp.fileno(), self._good_offset)
            os.fsync(self._fp.fileno())
        except OSError as exc:
            self._fail(f"could not truncate a torn append ({exc})")

    def _fail(self, reason: str) -> None:
        """Mark the log permanently unusable; every later append raises."""
        self.failed = True
        log.error("%s: WAL failed permanently: %s", self.path, reason)
        if self._fp is not None:
            try:
                self._fp.close()
            except OSError:
                pass
            self._fp = None

    def _sync(self) -> None:
        assert self._fp is not None
        if self._unsynced or self.syncs == 0:
            try:
                os.fsync(self._fp.fileno())
            except OSError as exc:
                # Post-fsync-failure page-cache state is unknowable; no
                # further record may be acked against this file.
                self._fail(f"fsync failed ({exc})")
                raise
            self.syncs += 1
            self._unsynced = 0

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WriteAheadLog path={self.path!r} fsync={self.fsync} "
            f"next_lsn={self.next_lsn} appended={self.appended}>"
        )


# -- compaction ---------------------------------------------------------------

@dataclass
class CompactionReport:
    """What one :meth:`WriteAheadLog.compact` pass did."""

    first_lsn: int
    last_lsn: int
    archived: int
    retained: int
    checkpoint: str
    bytes_before: int
    bytes_after: int
    segment: Optional[str] = None

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "first_lsn": self.first_lsn,
            "last_lsn": self.last_lsn,
            "archived": self.archived,
            "retained": self.retained,
            "checkpoint": self.checkpoint,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
        }
        if self.segment is not None:
            out["segment"] = self.segment
        return out


def resolve_checkpoint_ref(wal_path: str, header: dict[str, Any]) -> Optional[str]:
    """Path of the checkpoint a compacted WAL header references, verified.

    Returns ``None`` when the header carries no reference.  Relative
    paths resolve against the WAL's directory.  The referenced file's
    embedded content checksum must equal the SHA-256 recorded at
    compaction time — a swapped or regenerated checkpoint would
    otherwise silently splice a different history under the tail.
    """
    ref = header.get("checkpoint")
    if ref is None:
        return None
    if not isinstance(ref, dict) or not ref.get("path"):
        raise WalError(f"{wal_path}: malformed checkpoint reference {ref!r}")
    path = str(ref["path"])
    if not os.path.isabs(path):
        path = os.path.join(os.path.dirname(wal_path) or ".", path)
    if not os.path.exists(path):
        raise WalError(
            f"{wal_path}: compacted WAL references missing checkpoint {path}; "
            f"records at or below base_lsn are only recoverable through it"
        )
    try:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        raise WalError(f"{wal_path}: unreadable referenced checkpoint {path}: {exc}") from exc
    stored = (doc.get("checksum") or {}).get("hex") if isinstance(doc, dict) else None
    if stored != ref.get("sha256"):
        raise WalError(
            f"{path}: checkpoint SHA-256 does not match the WAL's compaction "
            f"reference (stored {stored}, expected {ref.get('sha256')})"
        )
    return path


# -- recovery -----------------------------------------------------------------

@dataclass
class RecoveryReport:
    """What one recovery pass did, for operators and tests."""

    wal_records: int = 0
    replayed: int = 0
    skipped: int = 0
    failed: int = 0
    last_lsn: int = 0
    torn: Optional[str] = None
    checkpoint: Optional[str] = None
    horizon: float = 0.0
    outcomes: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "wal_records": self.wal_records,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "failed": self.failed,
            "last_lsn": self.last_lsn,
            "horizon": self.horizon,
            "outcomes": dict(self.outcomes),
        }
        if self.torn is not None:
            out["torn"] = self.torn
        if self.checkpoint is not None:
            out["checkpoint"] = self.checkpoint
        return out

    def __str__(self) -> str:
        base = (
            f"recovered {self.replayed}/{self.wal_records} WAL records "
            f"(skipped {self.skipped} before checkpoint, {self.failed} failed "
            f"applications) to t={self.horizon:.6g}s"
        )
        if self.torn is not None:
            base += f"; torn tail dropped: {self.torn}"
        return base


def apply_record(engine: AdmissionEngine, record: WalRecord) -> Optional[str]:
    """Re-apply one logged request to ``engine``.

    Returns the submit outcome (``accepted``/``queued``/``rejected``)
    for submit records, ``None`` otherwise.  Raises the same engine or
    protocol errors the original application raised — callers replaying
    a log should count those as (deterministically) failed
    applications, not abort.
    """
    # Reproduce the pre-apply clock position (live servers poll() before
    # every request; `t` is the engine clock the original apply saw).
    if record.t > engine.now:
        engine.advance(record.t)
    request = protocol.parse_request(record.req)
    if isinstance(request, protocol.SubmitRequest):
        job = protocol.job_from_payload(request.job, default_submit_time=record.t)
        # The frame carries the trace id the original run minted (when
        # telemetry was on); reusing it keeps recovered traces
        # byte-identical to the uncrashed run.
        decision = engine.submit(
            job, clamp_past=record.clamp, trace=request.trace
        )
        engine.wal_lsns[job.job_id] = record.lsn
        return decision.outcome
    if isinstance(request, protocol.AdvanceRequest):
        engine.advance(request.to)
        return None
    if isinstance(request, protocol.DrainRequest):
        engine.drain()
        return None
    raise WalError(
        f"WAL record lsn={record.lsn} holds non-mutating request "
        f"{record.req.get('type')!r}"
    )


def recover(  # repro-lint: safe=CONC001  replays into a private engine before any thread sees it
    wal_path: str,
    checkpoint_path: Optional[str] = None,
    clock: Optional[Any] = None,
    obs: Optional[Any] = None,
) -> tuple[AdmissionEngine, RecoveryReport]:
    """Rebuild an engine from ``checkpoint_path`` (optional) + the WAL.

    Records at or below the checkpoint's recorded LSN are skipped; the
    rest are replayed in order.  Applications that failed originally
    (duplicate ids, out-of-order submits) fail identically on replay
    and are counted, preserving the exact original state.
    """
    result = read_wal(wal_path)
    if checkpoint_path is None:
        # A compacted log names its own base checkpoint; chain it so
        # `recover(wal)` keeps working transparently after compaction.
        checkpoint_path = resolve_checkpoint_ref(wal_path, result.header)
    report = RecoveryReport(
        wal_records=len(result.records),
        torn=result.torn,
        checkpoint=checkpoint_path,
        last_lsn=result.last_lsn,
    )

    if checkpoint_path is not None:
        from repro.service import checkpoint as checkpoint_mod

        engine = checkpoint_mod.load(checkpoint_path, clock=clock, obs=obs)
    else:
        config = result.header.get("config")
        if config is None:
            raise WalError(
                f"{wal_path}: WAL header carries no engine config and no "
                f"checkpoint was given; cannot rebuild an engine"
            )
        engine = AdmissionEngine(EngineConfig.from_dict(config), clock=clock, obs=obs)

    if engine.wal_lsn < result.base_lsn:
        raise WalError(
            f"{wal_path}: checkpoint stops at lsn={engine.wal_lsn} but the "
            f"log was compacted through lsn={result.base_lsn}; the records "
            f"between them are only in archive segments — recover from the "
            f"referenced compaction checkpoint instead"
        )
    start_lsn = engine.wal_lsn
    for record in result.records:
        if record.lsn <= start_lsn:
            report.skipped += 1
            continue
        try:
            outcome = apply_record(engine, record)
        except (EngineError, ProtocolError) as exc:
            report.failed += 1
            log.debug("replay of lsn=%d failed as it originally did: %s",
                      record.lsn, exc)
        else:
            if outcome is not None:
                report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
            report.replayed += 1
        finally:
            engine.wal_lsn = record.lsn
    # Jobs were rebuilt under their original explicit ids without
    # touching the auto-id counter; advance it so a fresh submit
    # without an id can never collide with a recovered job.
    reserve_job_ids(max(engine._known_ids, default=0))
    report.horizon = engine.now
    log.info("%s", report)
    return engine, report


__all__ = [
    "CompactionReport",
    "FSYNC_POLICIES",
    "MUTATING_TYPES",
    "RecoveryReport",
    "WAL_FORMAT",
    "WAL_VERSION",
    "WalCorruptionError",
    "WalError",
    "WalReadResult",
    "WalRecord",
    "WriteAheadLog",
    "apply_record",
    "discard_torn_header",
    "list_segments",
    "read_wal",
    "recover",
    "resolve_checkpoint_ref",
]
