"""HTTP client and open-loop load generator for the admission service.

:class:`ServiceClient` is a minimal stdlib (urllib) client speaking
:mod:`repro.service.protocol` against a running ``repro serve``
instance.  :class:`LoadGenerator` streams a job list at a configurable
speed-up — request *i* is scheduled ``(submit_i − submit_0) / speedup``
wall-clock seconds after the start — and reports sustained requests/sec
plus latency percentiles.

Pacing is open-loop: send times come from the trace alone, never from
response completion, so a slow server shows up as rising latency (and,
past its queue-depth limit, as shed ``overloaded`` responses) rather
than as a silently throttled client.  One detail bends pure open-loop
dispatch: with ``workers <= 1`` (the default) requests are *issued* in
submit-time order from a single sender, because a virtual-clock server
refuses arrivals behind its clock (``out_of_order``).  With more
workers dispatch is fully concurrent; use that against live
(``--live``) servers, which clamp stale submit times instead.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.cluster.job import Job
from repro.obs.log import get_logger
from repro.service import protocol

log = get_logger("service.loadgen")

#: Default latency histogram bucket bounds (seconds).  Mirrors the
#: server-side ``service_request_seconds`` buckets so client- and
#: server-observed latency distributions line up; override per run
#: with ``LoadGenerator(latency_buckets=...)`` / ``--latency-buckets``
#: when the tail needs finer resolution.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0,
)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of sorted data."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    pos = (len(sorted_values) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def job_request_payload(job: Job) -> dict[str, Any]:
    """The ``submit`` request body for one job (actual runtime included)."""
    payload: dict[str, Any] = {
        "id": job.job_id,
        "submit_time": job.submit_time,
        "runtime": job.runtime,
        "estimated_runtime": job.estimated_runtime,
        "numproc": job.numproc,
        "deadline": job.deadline,
        "urgency": job.urgency.value,
    }
    if job.user is not None:
        payload["user"] = job.user
    return payload


class ServiceClient:
    """Blocking JSON-RPC client for one admission service."""

    def __init__(self, url: str, timeout: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def rpc(self, request: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """POST one protocol request; returns ``(http_status, response)``.

        Transport failures — connection refused/reset, timeouts,
        dropped connections — never raise; they come back as status
        ``0`` with a typed ``unavailable`` error, so callers (the
        open-loop load generator in particular) record them as
        failures and keep going instead of aborting the whole run.
        """
        body = protocol.encode(request)
        req = urllib.request.Request(
            f"{self.url}/v1/rpc",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                payload = protocol.error_response(
                    protocol.ErrorCode.INTERNAL, raw or str(exc)
                )
            return exc.code, payload
        except (urllib.error.URLError, OSError, http.client.HTTPException) as exc:
            return 0, protocol.error_response(
                protocol.ErrorCode.UNAVAILABLE, f"{type(exc).__name__}: {exc}"
            )

    def submit(self, job: Job) -> tuple[int, dict[str, Any]]:
        return self.rpc({
            "v": protocol.PROTOCOL_VERSION, "type": "submit",
            "job": job_request_payload(job),
        })

    def submit_batch(self, jobs: Sequence[Job]) -> tuple[int, dict[str, Any]]:
        """Submit several jobs in one batch frame (one round trip)."""
        return self.rpc({
            "v": protocol.PROTOCOL_VERSION, "type": "batch",
            "jobs": [job_request_payload(job) for job in jobs],
        })

    def query(self, job_id: int) -> tuple[int, dict[str, Any]]:
        return self.rpc(
            {"v": protocol.PROTOCOL_VERSION, "type": "query", "job": job_id}
        )

    def stats(self) -> tuple[int, dict[str, Any]]:
        return self.rpc({"v": protocol.PROTOCOL_VERSION, "type": "stats"})

    def trace(self, job_id: int) -> tuple[int, dict[str, Any]]:
        """Fetch the reconstructed lifecycle span tree of one job."""
        return self.rpc(
            {"v": protocol.PROTOCOL_VERSION, "type": "trace", "job": job_id}
        )

    def drain(self) -> tuple[int, dict[str, Any]]:
        return self.rpc({"v": protocol.PROTOCOL_VERSION, "type": "drain"})

    def checkpoint(self, path: Optional[str] = None) -> tuple[int, dict[str, Any]]:
        request: dict[str, Any] = {"v": protocol.PROTOCOL_VERSION, "type": "checkpoint"}
        if path is not None:
            request["path"] = path
        return self.rpc(request)

    def healthy(self) -> bool:
        try:
            with urllib.request.urlopen(
                f"{self.url}/healthz", timeout=self.timeout
            ) as resp:
                return resp.status == 200
        except (urllib.error.URLError, OSError):
            return False


@dataclass(frozen=True)
class RequestResult:
    """One request's fate as seen by the load generator."""

    job_id: int
    status: int
    outcome: str           # decision outcome, or the error code
    latency: float         # seconds
    sent_at: float         # seconds since generator start
    lag: float             # how late the send fired vs its schedule


@dataclass(frozen=True)
class LoadReport:
    """Aggregate throughput/latency statistics of one generator run."""

    requests: int
    ok: int
    errors: int
    duration: float
    outcomes: dict[str, int]
    latency_p50: float
    latency_p90: float
    latency_p99: float
    latency_max: float
    latency_p999: float = 0.0
    #: Cumulative histogram of request latencies over the run's bucket
    #: bounds (Prometheus convention: each bucket counts observations
    #: ``<= bound``; the ``+Inf`` bucket equals ``requests``).
    latency_histogram: dict[str, int] = field(default_factory=dict)
    results: tuple[RequestResult, ...] = field(repr=False, default=())

    @property
    def rps(self) -> float:
        """Sustained requests per second over the whole run."""
        return self.requests / self.duration if self.duration > 0 else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "duration": self.duration,
            "rps": self.rps,
            "outcomes": dict(self.outcomes),
            "latency_p50": self.latency_p50,
            "latency_p90": self.latency_p90,
            "latency_p99": self.latency_p99,
            "latency_p999": self.latency_p999,
            "latency_max": self.latency_max,
            "latency_histogram": dict(self.latency_histogram),
        }

    def __str__(self) -> str:
        return (
            f"{self.requests} requests in {self.duration:.3f}s "
            f"({self.rps:.1f} req/s), {self.errors} errors; latency "
            f"p50={self.latency_p50 * 1e3:.2f}ms p90={self.latency_p90 * 1e3:.2f}ms "
            f"p99={self.latency_p99 * 1e3:.2f}ms "
            f"p99.9={self.latency_p999 * 1e3:.2f}ms "
            f"max={self.latency_max * 1e3:.2f}ms"
        )


class LoadGenerator:
    """Stream a job list at an SWF trace's own cadence, sped up.

    Parameters
    ----------
    client:
        Target service.
    jobs:
        The stream (sorted by submit time; a guard sorts defensively).
    speedup:
        Trace seconds per wall-clock second.  ``inf`` (or anything
        making every gap < 1 µs) degenerates to back-to-back sends.
    workers:
        ``<= 1``: one ordered sender (safe against virtual-clock
        servers).  ``> 1``: concurrent open-loop dispatch.
    latency_buckets:
        Ascending positive histogram bucket bounds (seconds) for the
        report's cumulative latency histogram; defaults to
        :data:`DEFAULT_LATENCY_BUCKETS`.
    batch:
        Jobs per request.  ``1`` (the default) sends plain ``submit``
        frames — the pre-batch wire behaviour, byte-for-byte.  ``> 1``
        groups up to ``batch`` consecutive jobs into one batch frame,
        scheduled at the *first* job's offset, and unpacks the per-item
        envelopes into one :class:`RequestResult` per job (items of a
        frame share the frame's round-trip latency).  Batching implies
        the single ordered sender; ``workers > 1`` with ``batch > 1``
        is refused because concurrent frames would interleave
        submit-time order within the server.
    """

    def __init__(
        self,
        client: ServiceClient,
        jobs: Sequence[Job],
        speedup: float = 1.0,
        workers: int = 1,
        latency_buckets: Optional[Sequence[float]] = None,
        batch: int = 1,
    ) -> None:
        if speedup <= 0:
            raise ValueError(f"speedup must be > 0, got {speedup}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if batch > 1 and workers > 1:
            raise ValueError("batch > 1 requires the single ordered sender")
        bounds = tuple(
            float(b) for b in (
                latency_buckets if latency_buckets is not None
                else DEFAULT_LATENCY_BUCKETS
            )
        )
        if not bounds:
            raise ValueError("latency_buckets must not be empty")
        if any(b <= 0 for b in bounds) or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"latency_buckets must be positive and strictly ascending, "
                f"got {bounds}"
            )
        self.client = client
        self.jobs = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        self.speedup = float(speedup)
        self.workers = workers
        self.latency_buckets = bounds
        self.batch = int(batch)
        self._results: list[RequestResult] = []
        self._lock = threading.Lock()

    # -- one request -------------------------------------------------------
    def _fire(self, job: Job, offset: float, epoch: float) -> None:
        target = epoch + offset
        delay = target - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        sent_at = time.monotonic()
        t0 = time.perf_counter()
        # ServiceClient.rpc maps transport errors to a typed status-0
        # result, so a flaky server shows up in the report, not as an
        # aborted run.
        status, response = self.client.submit(job)
        latency = time.perf_counter() - t0
        if response.get("ok"):
            outcome = response.get("decision", {}).get("outcome", "ok")
        else:
            outcome = response.get("error", {}).get("code", "error")
        result = RequestResult(
            job_id=job.job_id,
            status=status,
            outcome=outcome,
            latency=latency,
            sent_at=sent_at - epoch,
            lag=max(0.0, sent_at - target),
        )
        with self._lock:
            self._results.append(result)

    def _fire_batch(self, jobs: Sequence[Job], offset: float, epoch: float) -> None:
        """Send one batch frame; record one result per contained job."""
        target = epoch + offset
        delay = target - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        sent_at = time.monotonic()
        t0 = time.perf_counter()
        status, response = self.client.submit_batch(jobs)
        latency = time.perf_counter() - t0
        items = response.get("results") if response.get("ok") else None
        results = []
        for i, job in enumerate(jobs):
            if items is not None and i < len(items):
                item = items[i]
                if item.get("ok"):
                    outcome = item.get("decision", {}).get("outcome", "ok")
                    item_status = status
                else:
                    outcome = item.get("error", {}).get("code", "error")
                    item_status = protocol.HTTP_STATUS.get(
                        item.get("error", {}).get("code", ""), status
                    )
            else:
                # Whole-frame failure (transport error, shed, draining):
                # every job in the frame shares the frame's fate.
                outcome = response.get("error", {}).get("code", "error")
                item_status = status
            results.append(RequestResult(
                job_id=job.job_id,
                status=item_status,
                outcome=outcome,
                latency=latency,
                sent_at=sent_at - epoch,
                lag=max(0.0, sent_at - target),
            ))
        with self._lock:
            self._results.extend(results)

    # -- the run -----------------------------------------------------------
    def run(self) -> LoadReport:
        """Send the whole stream; blocks until every response is in."""
        self._results = []
        if not self.jobs:
            return LoadReport(
                requests=0, ok=0, errors=0, duration=0.0, outcomes={},
                latency_p50=0.0, latency_p90=0.0, latency_p99=0.0,
                latency_max=0.0,
            )
        base = self.jobs[0].submit_time
        offsets = [(job.submit_time - base) / self.speedup for job in self.jobs]
        epoch = time.monotonic()
        if self.batch > 1:
            for start in range(0, len(self.jobs), self.batch):
                group = self.jobs[start:start + self.batch]
                self._fire_batch(group, offsets[start], epoch)
        elif self.workers <= 1:
            for job, offset in zip(self.jobs, offsets):
                self._fire(job, offset, epoch)
        else:
            threads = [
                threading.Thread(
                    target=self._fire, args=(job, offset, epoch), daemon=True
                )
                for job, offset in zip(self.jobs, offsets)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        duration = time.monotonic() - epoch
        return self._report(duration)

    def _report(self, duration: float) -> LoadReport:
        results = sorted(self._results, key=lambda r: r.sent_at)
        latencies = sorted(r.latency for r in results)
        outcomes: dict[str, int] = {}
        ok = 0
        for r in results:
            outcomes[r.outcome] = outcomes.get(r.outcome, 0) + 1
            if 200 <= r.status < 300:
                ok += 1
        histogram: dict[str, int] = {}
        cumulative = 0
        index = 0
        for bound in self.latency_buckets:
            while index < len(latencies) and latencies[index] <= bound:
                cumulative += 1
                index += 1
            histogram[f"{bound:g}"] = cumulative
        histogram["+Inf"] = len(latencies)
        report = LoadReport(
            requests=len(results),
            ok=ok,
            errors=len(results) - ok,
            duration=duration,
            outcomes=outcomes,
            latency_p50=percentile(latencies, 50.0),
            latency_p90=percentile(latencies, 90.0),
            latency_p99=percentile(latencies, 99.0),
            latency_p999=percentile(latencies, 99.9),
            latency_max=latencies[-1],
            latency_histogram=histogram,
            results=tuple(results),
        )
        log.info("%s", report)
        return report


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "LoadGenerator",
    "LoadReport",
    "RequestResult",
    "ServiceClient",
    "job_request_payload",
    "percentile",
]
