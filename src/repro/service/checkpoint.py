"""Deterministic snapshot/restore of a live :class:`AdmissionEngine`.

A checkpoint is one JSON object capturing everything the engine needs
to resume mid-trace: the kernel clock (and its sequence counters), all
jobs ever submitted with their lifecycle state, per-node work ledgers,
the policy's queue and completion tracking, the engine's decision log,
and any named RNG streams.  Pending kernel events are **not** stored —
they are closures — but at any quiescent point the only live events are
node completion timers, which are pure functions of the stored ledgers
and are re-derived on restore (space-shared completions from
``added_at + remaining_work / rating``; time-shared ones by a single
``recompute``).

Two determinism guarantees:

* :func:`dumps` is canonical (sorted keys, compact separators, stable
  list orders), so snapshotting the same engine state twice yields
  byte-identical text;
* a restored engine fed the remainder of a trace reports **identical
  final metrics** to the uninterrupted run — the checkpoint round-trip
  test in ``tests/test_service/test_checkpoint.py`` asserts this for
  EDF, Libra and LibraRisk.  (Sequence numbers of re-derived completion
  timers may differ from the uninterrupted run, so simultaneous
  completions can *process* in a different order; every such order
  yields the same job outcomes, which is what the metrics check pins.)
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from typing import Any, Optional

from repro.cluster.job import Job, JobState, UrgencyClass, reserve_job_ids
from repro.cluster.node import SpaceSharedNode, TimeSharedNode
from repro.service.engine import AdmissionEngine, Decision, EngineConfig
from repro.sim.rng import RngStreams

#: Identifies a checkpoint document (sanity check before any parsing).
CHECKPOINT_FORMAT = "repro-admission-engine"

#: Bumped whenever the snapshot schema changes incompatibly.
CHECKPOINT_VERSION = 1

#: Pending events a quiescent engine may legally hold: node completion
#: timers only (both disciplines name them ``node<id>:...``).
_RESTORABLE_EVENT = re.compile(r"^node\d+:(completion|job\d+:done)$")


class CheckpointError(ValueError):
    """Raised for unsnapshottable state or malformed checkpoint data."""


# -- snapshot -----------------------------------------------------------------

def snapshot(engine: AdmissionEngine) -> dict[str, Any]:
    """Capture the engine's full restorable state as a JSON-able dict."""
    now = engine.sim.now
    for event in engine.sim.iter_pending():
        if not _RESTORABLE_EVENT.match(event.name or ""):
            raise CheckpointError(
                f"cannot checkpoint: pending event {event.name or '<anonymous>'!r} "
                f"at t={event.time:.6g} is not a reconstructible completion timer"
            )

    jobs = [_job_state(job) for job in engine.rms.jobs]
    nodes = []
    for node in engine.cluster:
        if isinstance(node, TimeSharedNode) and node.online:
            node.sync(now)  # bring ledgers to `now` so the snapshot is exact
        nodes.append(
            {
                "id": node.node_id,
                "online": node.online,
                "failures": node.failures,
                "busy_time": node.busy_time,
                "tasks": [
                    {
                        "job": task.job.job_id,
                        "remaining_work": task.remaining_work,
                        "remaining_est_work": task.remaining_est_work,
                        "added_at": task.added_at,
                    }
                    for _, task in sorted(node.tasks.items())
                ],
            }
        )

    policy_state: dict[str, Any] = {
        "pending_tasks": {
            str(job_id): count
            for job_id, count in sorted(engine.policy._pending_tasks.items())
        },
    }
    queue = getattr(engine.policy, "queue", None)
    if queue is not None:
        policy_state["queue"] = [job.job_id for job in queue]

    snap: dict[str, Any] = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "config": engine.config.as_dict(),
        "sim": engine.sim.clock_state(),
        "jobs": jobs,
        "rms": {
            "accepted": [j.job_id for j in engine.rms.accepted],
            "rejected": [j.job_id for j in engine.rms.rejected],
            "completed": [j.job_id for j in engine.rms.completed],
            "failed": [j.job_id for j in engine.rms.failed],
        },
        "policy": policy_state,
        "nodes": nodes,
        "decisions": [d.as_dict() for d in engine.decisions],
    }
    if engine.wal_lsn:
        snap["wal_lsn"] = engine.wal_lsn
    if engine._submit_seq or engine.trace_ids:
        # Optional block (version stays 1): trace-id stream position and
        # the minted ids, so a restored engine keeps minting the same
        # deterministic sequence and `repro trace` answers for
        # pre-checkpoint jobs byte-identically.
        trace_state: dict[str, Any] = {"seq": engine._submit_seq}
        if engine.trace_ids:
            trace_state["ids"] = {
                str(job_id): engine.trace_ids[job_id]
                for job_id in sorted(engine.trace_ids)
            }
        if engine.wal_lsns:
            trace_state["wal_lsns"] = {
                str(job_id): engine.wal_lsns[job_id]
                for job_id in sorted(engine.wal_lsns)
            }
        snap["trace"] = trace_state
    if engine.streams is not None:
        snap["rng"] = {
            "seed": engine.streams.seed,
            "streams": {
                name: engine.streams.get(name).bit_generator.state
                for name in engine.streams.stream_names()
            },
        }
    return snap


def _job_state(job: Job) -> dict[str, Any]:
    out: dict[str, Any] = {
        "id": job.job_id,
        "submit_time": job.submit_time,
        "runtime": job.runtime,
        "estimated_runtime": job.estimated_runtime,
        "numproc": job.numproc,
        "deadline": job.deadline,
        "urgency": job.urgency.value,
        "state": job.state.value,
    }
    if job.user is not None:
        out["user"] = job.user
    if job.start_time is not None:
        out["start_time"] = job.start_time
    if job.finish_time is not None:
        out["finish_time"] = job.finish_time
    if job.assigned_nodes:
        out["assigned_nodes"] = list(job.assigned_nodes)
    if job.reject_reason:
        out["reject_reason"] = job.reject_reason
    return out


# -- restore ------------------------------------------------------------------

def restore(  # repro-lint: safe=CONC001  builds a private engine; not shared until returned
    snap: dict[str, Any],
    clock: Optional[Any] = None,
    obs: Optional[Any] = None,
) -> AdmissionEngine:
    """Rebuild a live engine from a :func:`snapshot` dict."""
    if snap.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"not an engine checkpoint (format={snap.get('format')!r})"
        )
    if snap.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {snap.get('version')!r} "
            f"(this build reads v{CHECKPOINT_VERSION})"
        )

    streams = None
    if "rng" in snap:
        rng = snap["rng"]
        streams = RngStreams(seed=int(rng["seed"]))
        for name in sorted(rng.get("streams", {})):
            streams.get(name).bit_generator.state = rng["streams"][name]

    engine = AdmissionEngine(
        EngineConfig.from_dict(snap["config"]), clock=clock, obs=obs, streams=streams,
    )
    sim_state = snap["sim"]
    now = float(sim_state["now"])
    engine.sim.restore_clock(
        now=now, seq=sim_state["seq"], events_fired=sim_state["events_fired"]
    )
    engine.clock.advance_to(now)

    by_id: dict[int, Job] = {}
    for data in snap["jobs"]:
        job = _rebuild_job(data)
        by_id[job.job_id] = job
        engine.rms.jobs.append(job)
    engine._known_ids.update(by_id)
    # Auto-assigned ids must never collide with restored explicit ids:
    # a post-restore submit without an id would otherwise be refused as
    # a duplicate (or silently answered with the old job's decision).
    reserve_job_ids(max(by_id, default=0))
    for list_name in ("accepted", "rejected", "completed", "failed"):
        target = getattr(engine.rms, list_name)
        for job_id in snap["rms"][list_name]:
            target.append(_lookup(by_id, job_id))

    policy_state = snap["policy"]
    engine.policy._pending_tasks = {
        int(job_id): int(count)
        for job_id, count in policy_state["pending_tasks"].items()
    }
    if "queue" in policy_state:
        queue = getattr(engine.policy, "queue", None)
        if queue is None:
            raise CheckpointError(
                f"checkpoint carries a queue but policy "
                f"{engine.policy.name!r} has none"
            )
        queue.extend(_lookup(by_id, job_id) for job_id in policy_state["queue"])

    # Nodes in id order so re-derived completion timers get stable seqs.
    for data in sorted(snap["nodes"], key=lambda d: d["id"]):
        node = engine.cluster.node(int(data["id"]))
        node.busy_time = float(data["busy_time"])
        node.failures = int(data["failures"])
        node.online = bool(data["online"])
        entries = [
            (
                _lookup(by_id, t["job"]),
                float(t["remaining_work"]),
                float(t["remaining_est_work"]),
                float(t["added_at"]),
            )
            for t in data["tasks"]
        ]
        if not entries:
            if isinstance(node, TimeSharedNode):
                node._last_sync = now
            continue
        if isinstance(node, TimeSharedNode):
            node.restore_tasks(entries, now)
        elif isinstance(node, SpaceSharedNode):
            (job, work, _est, added_at), = entries  # space-shared: one task
            node.restore_task(job, work, added_at)
        else:  # pragma: no cover - no other disciplines exist
            raise CheckpointError(f"cannot restore node type {type(node).__name__}")

    engine.decisions = [
        Decision(
            job_id=d["job"],
            outcome=d["outcome"],
            t=d["t"],
            policy=d["policy"],
            reason=d.get("reason", ""),
        )
        for d in snap["decisions"]
    ]
    engine._decision_index = {d.job_id: d for d in engine.decisions}
    engine.wal_lsn = int(snap.get("wal_lsn", 0))
    trace_state = snap.get("trace", {})
    engine._submit_seq = int(trace_state.get("seq", 0))
    engine.trace_ids = {
        int(job_id): str(trace_id)
        for job_id, trace_id in trace_state.get("ids", {}).items()
    }
    engine.wal_lsns = {
        int(job_id): int(lsn)
        for job_id, lsn in trace_state.get("wal_lsns", {}).items()
    }
    # The windowed telemetry is a pure function of the decision log;
    # replaying it here makes the restored window byte-identical to the
    # uncrashed engine's.
    if engine.window is not None:
        engine.window.replay(engine.decisions)
    return engine


def _rebuild_job(data: dict[str, Any]) -> Job:
    job = Job(
        runtime=data["runtime"],
        estimated_runtime=data["estimated_runtime"],
        numproc=data["numproc"],
        deadline=data["deadline"],
        submit_time=data["submit_time"],
        urgency=UrgencyClass(data["urgency"]),
        user=data.get("user"),
        job_id=data["id"],
    )
    try:
        job.state = JobState(data["state"])
    except ValueError as exc:
        raise CheckpointError(f"job {data['id']}: unknown state {data['state']!r}") from exc
    job.start_time = data.get("start_time")
    job.finish_time = data.get("finish_time")
    job.assigned_nodes = list(data.get("assigned_nodes", ()))
    job.reject_reason = data.get("reject_reason")
    return job


def _lookup(by_id: dict[int, Job], job_id: int) -> Job:
    try:
        return by_id[int(job_id)]
    except KeyError:
        raise CheckpointError(f"checkpoint references unknown job {job_id}") from None


# -- serialization ------------------------------------------------------------

def dumps(snap: dict[str, Any]) -> str:
    """Canonical text form: equal states produce byte-identical output."""
    return json.dumps(
        snap, sort_keys=True, separators=(",", ":"), ensure_ascii=False,
        allow_nan=False,
    )


def _content_checksum(snap: dict[str, Any]) -> str:
    """SHA-256 of the canonical text of ``snap`` (sans ``checksum`` key)."""
    return hashlib.sha256(dumps(snap).encode("utf-8")).hexdigest()


def save(engine: AdmissionEngine, path: str) -> dict[str, Any]:
    """Snapshot ``engine`` to ``path`` atomically; returns the written dict.

    The document is written to a temporary file in the same directory,
    fsynced, and renamed over ``path`` with ``os.replace`` — a crash
    mid-save leaves either the old checkpoint or the new one, never a
    torn hybrid.  A ``checksum`` field (SHA-256 of the canonical
    snapshot text) lets :func:`load` detect any later corruption.
    """
    snap = snapshot(engine)
    doc = dict(snap)
    doc["checksum"] = {"algo": "sha256", "hex": _content_checksum(snap)}
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8", newline="\n") as fp:
            fp.write(dumps(doc))
            fp.write("\n")
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    try:
        # Make the rename itself durable where the platform allows it.
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    return doc


def load(
    path: str,
    clock: Optional[Any] = None,
    obs: Optional[Any] = None,
) -> AdmissionEngine:
    """Restore an engine from a file written by :func:`save`.

    Validates the embedded content checksum (when present — legacy
    checkpoints without one are still accepted) and raises
    :class:`CheckpointError` naming the file on any corruption.
    """
    with open(path, "r", encoding="utf-8") as fp:
        try:
            snap = json.load(fp)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{path}: invalid checkpoint JSON ({exc}); the file is "
                f"corrupt or truncated — restore from an older checkpoint"
            ) from exc
    if not isinstance(snap, dict):
        raise CheckpointError(f"{path}: checkpoint must be a JSON object")
    checksum = snap.pop("checksum", None)
    if checksum is not None:
        if not isinstance(checksum, dict) or checksum.get("algo") != "sha256":
            raise CheckpointError(
                f"{path}: unsupported checkpoint checksum {checksum!r}"
            )
        actual = _content_checksum(snap)
        if actual != checksum.get("hex"):
            raise CheckpointError(
                f"{path}: checkpoint content checksum mismatch (stored "
                f"{checksum.get('hex')}, computed {actual}); the file is "
                f"corrupt — restore from an older checkpoint"
            )
    return restore(snap, clock=clock, obs=obs)


__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "dumps",
    "load",
    "restore",
    "save",
    "snapshot",
]
