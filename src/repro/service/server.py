"""A stdlib HTTP front-end for the admission engine (``repro serve``).

One :class:`AdmissionService` owns one :class:`AdmissionEngine` behind a
lock (the engine is single-threaded state; HTTP threads serialize on
it) and speaks :mod:`repro.service.protocol` on ``POST /v1/rpc``.
Convenience read-only endpoints mirror common operational queries::

    GET /healthz      -> health status (SLO burn rate, WAL lag, shed state)
    GET /v1/stats     -> stats response (same payload as the RPC)
    GET /metrics      -> Prometheus text of the service registry

Backpressure
------------
Two knobs bound the damage a misbehaving client can do:

* ``max_request_bytes`` — requests with a larger (or missing)
  ``Content-Length`` are refused with 413/411 before the body is read;
* ``max_inflight`` — at most this many requests may hold engine time
  concurrently; excess requests get an immediate 503 ``overloaded``
  (open-loop clients measure this as loss, not latency).

Every request is timed into ``service_request_seconds`` histograms
(labelled by request type) in a :class:`~repro.obs.metrics.MetricsRegistry`,
so admission latency percentiles come straight from ``GET /metrics``.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic, perf_counter
from typing import Any, Optional

from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.service import checkpoint as checkpoint_mod
from repro.service import protocol
from repro.service.engine import (
    AdmissionEngine,
    DuplicateJob,
    EngineError,
    OutOfOrderSubmit,
)
from repro.service.faults import DropRequest, FaultInjector, InjectedError
from repro.service.protocol import ErrorCode, ProtocolError
from repro.service.wal import RecoveryReport, WalError, WriteAheadLog

log = get_logger("service.server")

#: Admission-latency bucket bounds (seconds) — sub-millisecond to 1 s.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0,
)


class AdmissionService:
    """The engine + its service-level guardrails and metrics.

    Parameters
    ----------
    engine:
        The (possibly restored) engine to serve.
    max_request_bytes:
        Upper bound on accepted request bodies.
    max_inflight:
        Queue-depth limit: concurrent requests beyond this are shed
        with ``overloaded``.
    registry:
        Metrics registry for request counters/latency histograms
        (defaults to a fresh one; exposed at ``GET /metrics``).
    wal:
        Optional :class:`~repro.service.wal.WriteAheadLog`.  When
        present, every state-mutating request (submit/advance/drain) is
        appended — and, under ``fsync="always"``, made durable —
        *before* it touches the engine, so a crash never loses an
        acked decision.
    faults:
        Optional :class:`~repro.service.faults.FaultInjector`; the
        middleware hook chaos tests use to script drops, 5xx errors,
        delays and crash points.
    retry_after:
        Seconds advertised (JSON ``error.retry_after`` + HTTP
        ``Retry-After``) on shed/draining responses, so well-behaved
        clients back off instead of hammering an overloaded server.
    slo_deadline_miss_objective:
        The SLO: tolerated fraction of completed jobs that miss their
        deadline.  ``GET /healthz`` reports the burn rate (observed
        miss ratio over this objective) and flips the health status to
        ``"degraded"`` once the budget is fully burned (rate > 1).
    """

    def __init__(
        self,
        engine: AdmissionEngine,
        max_request_bytes: int = 64 * 1024,
        max_inflight: int = 64,
        registry: Optional[MetricsRegistry] = None,
        wal: Optional[WriteAheadLog] = None,
        faults: Optional[FaultInjector] = None,
        retry_after: float = 1.0,
        slo_deadline_miss_objective: float = 0.05,
        wal_compact_every: int = 0,
        compact_path: Optional[str] = None,
    ) -> None:
        if max_request_bytes < 1:
            raise ValueError("max_request_bytes must be >= 1")
        if max_inflight < 0:
            raise ValueError("max_inflight must be >= 0")
        if retry_after <= 0:
            raise ValueError("retry_after must be > 0")
        if not 0 < slo_deadline_miss_objective <= 1:
            raise ValueError("slo_deadline_miss_objective must be in (0, 1]")
        if wal_compact_every < 0:
            raise ValueError("wal_compact_every must be >= 0")
        if wal_compact_every and wal is None:
            raise ValueError("wal_compact_every requires a WAL")
        self.engine = engine
        self.max_request_bytes = int(max_request_bytes)
        self.max_inflight = int(max_inflight)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.wal = wal
        self.faults = faults
        self.retry_after = float(retry_after)
        self.slo_deadline_miss_objective = float(slo_deadline_miss_objective)
        #: Compact the WAL once it retains this many records past the
        #: last compaction point (0 disables auto-compaction).
        self.wal_compact_every = int(wal_compact_every)
        self.compact_path = compact_path or (
            wal.path + ".compact.ckpt" if wal is not None else None
        )
        self.draining = False
        self._engine_lock = threading.Lock()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._shed_total = 0

    # -- backpressure accounting -------------------------------------------
    def _acquire_slot(self) -> bool:
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                return False
            self._inflight += 1
            return True

    def _release_slot(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    # -- request execution --------------------------------------------------
    def handle(self, body: bytes) -> tuple[int, dict[str, Any]]:
        """Execute one protocol request; returns ``(http_status, response)``.

        May raise :class:`~repro.service.faults.DropRequest` (the HTTP
        layer answers by closing the connection) or let a scripted
        :class:`~repro.service.faults.CrashPoint` propagate — both are
        fault-injection artefacts that must not be converted into
        polite responses.
        """
        if self.faults is not None:
            try:
                self.faults.on_request()
            except InjectedError as exc:
                self.registry.counter(
                    "service_faults_injected_total", "Scripted request failures",
                    kind="error",
                ).inc()
                err = protocol.error_response(ErrorCode.INJECTED, str(exc))
                return protocol.HTTP_STATUS[ErrorCode.INJECTED], err
        if self.draining:
            err = protocol.error_response(
                ErrorCode.SHUTTING_DOWN, "server is shutting down",
                retry_after=self.retry_after,
            )
            return protocol.HTTP_STATUS[ErrorCode.SHUTTING_DOWN], err
        if not self._acquire_slot():
            with self._inflight_lock:
                self._shed_total += 1
            self.registry.counter(
                "service_requests_shed_total", "Requests refused by backpressure"
            ).inc()
            err = protocol.error_response(
                ErrorCode.OVERLOADED,
                f"too many requests in flight (limit {self.max_inflight})",
                retry_after=self.retry_after,
            )
            return protocol.HTTP_STATUS[ErrorCode.OVERLOADED], err
        try:
            return self._dispatch(body)
        finally:
            self._release_slot()

    def _dispatch(self, body: bytes) -> tuple[int, dict[str, Any]]:
        t0 = perf_counter()
        rtype = "invalid"
        try:
            request = protocol.parse_request(body)
            rtype = type(request).__name__.replace("Request", "").lower()
            with self._engine_lock:
                self.engine.poll()
                response = self._execute(request)
                self._maybe_compact()
            status = 200
        except ProtocolError as exc:
            response = protocol.error_response(exc.code, exc.message)
            status = exc.http_status
        except OutOfOrderSubmit as exc:
            response = protocol.error_response(ErrorCode.OUT_OF_ORDER, str(exc))
            status = protocol.HTTP_STATUS[ErrorCode.OUT_OF_ORDER]
        except DuplicateJob as exc:
            response = protocol.error_response(ErrorCode.CONFLICT, str(exc))
            status = protocol.HTTP_STATUS[ErrorCode.CONFLICT]
        except (EngineError, checkpoint_mod.CheckpointError, OSError) as exc:
            response = protocol.error_response(ErrorCode.INTERNAL, str(exc))
            status = protocol.HTTP_STATUS[ErrorCode.INTERNAL]
        except Exception as exc:
            # The handler thread must outlive any bug in the engine or a
            # policy: surface it as a typed 500, never a dead connection.
            log.exception("unexpected failure handling %s request", rtype)
            response = protocol.error_response(
                ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"
            )
            status = protocol.HTTP_STATUS[ErrorCode.INTERNAL]
        elapsed = perf_counter() - t0
        outcome = "ok" if response.get("ok") else response["error"]["code"]
        self.registry.counter(
            "service_requests_total", "Protocol requests by type and outcome",
            type=rtype, outcome=outcome,
        ).inc()
        self.registry.histogram(
            "service_request_seconds", "Wall-clock request handling latency",
            buckets=LATENCY_BUCKETS, type=rtype,
        ).observe(elapsed)
        return status, response

    # -- write-ahead logging ------------------------------------------------
    def _crash(self, point: str) -> None:
        """Scripted crash point (no-op without an injector)."""
        if self.faults is not None:
            self.faults.crash(point)

    def _wal_append(self, req: dict[str, Any], clamp: bool) -> Optional[int]:
        """Durably log one mutating request *before* it is applied."""
        if self.wal is None:
            return None
        self._crash("wal.before_append")
        t0 = perf_counter()
        lsn = self.wal.append(self.engine.sim.now, req, clamp=clamp)
        self.registry.histogram(
            "service_wal_append_seconds",
            "Wall-clock latency of one WAL append (including any fsync)",
            buckets=LATENCY_BUCKETS,
        ).observe(perf_counter() - t0)
        self.registry.counter(
            "service_wal_appends_total", "Requests appended to the WAL"
        ).inc()
        self.registry.gauge(
            "service_wal_last_lsn", "Highest LSN appended to the WAL"
        ).set(lsn)
        self.registry.gauge(
            "service_wal_bytes_written", "Bytes appended to the WAL"
        ).set(self.wal.bytes_written)
        self.registry.gauge(
            "service_wal_fsyncs", "fsync calls issued by the WAL"
        ).set(self.wal.syncs)
        self._crash("wal.after_append")
        return lsn

    def _apply_logged(self, lsn: Optional[int], apply: Any) -> Any:  # repro-lint: locked  only called from _execute under _engine_lock
        """Apply a WAL-logged mutation, recording the LSN even on failure.

        A failed application (duplicate id, out-of-order submit) fails
        identically on replay, so its LSN still counts as consumed.
        """
        try:
            result = apply()
        finally:
            if lsn is not None:
                self.engine.wal_lsn = lsn
                self.registry.gauge(
                    "service_wal_applied_lsn",
                    "Highest LSN applied to the engine",
                ).set(lsn)
        self._crash("wal.after_apply")
        return result

    def _maybe_compact(self) -> None:  # repro-lint: locked  only called from _dispatch under _engine_lock
        """Compact the WAL once enough records accumulate past base_lsn.

        Runs under the engine lock (the checkpoint must snapshot the
        exact state the retained tail continues from).  A compaction
        *failure* is logged and counted but does not fail the client's
        request — the triggering mutation is already durable and
        applied; only the maintenance step was lost.  Scripted
        :class:`~repro.service.faults.CrashPoint` still propagates.
        """
        if self.wal is None or self.wal_compact_every <= 0:
            return
        retained = self.wal.next_lsn - 1 - self.wal.base_lsn
        if retained < self.wal_compact_every:
            return
        if self.engine.wal_lsn <= self.wal.base_lsn:
            return  # nothing applied past the last compaction point yet
        assert self.compact_path is not None
        try:
            report = self.wal.compact(
                self.engine, self.compact_path, crash=self._crash
            )
        except (WalError, checkpoint_mod.CheckpointError, OSError) as exc:
            self.registry.counter(
                "service_wal_compaction_failures_total",
                "Auto-compaction attempts that failed",
            ).inc()
            log.error("WAL auto-compaction failed: %s", exc)
            return
        self.registry.counter(
            "service_wal_compactions_total", "WAL compactions performed"
        ).inc()
        self.registry.gauge(
            "service_wal_base_lsn",
            "LSN the active WAL tail starts after (compaction point)",
        ).set(self.wal.base_lsn)
        self.registry.counter(
            "service_wal_compacted_records_total",
            "Records moved from the active WAL into archive segments",
        ).inc(report.archived)
        log.info(
            "compacted WAL through LSN %d: %d archived, %d retained, "
            "%d -> %d bytes",
            report.last_lsn, report.archived, report.retained,
            report.bytes_before, report.bytes_after,
        )

    def note_recovery(self, report: RecoveryReport) -> None:
        """Expose a recovery pass's outcome through ``GET /metrics``."""
        self.registry.gauge(
            "service_recovery_wal_records", "WAL records found at recovery"
        ).set(report.wal_records)
        self.registry.gauge(
            "service_recovery_replayed", "WAL records replayed at recovery"
        ).set(report.replayed)
        self.registry.gauge(
            "service_recovery_skipped",
            "WAL records already covered by the checkpoint",
        ).set(report.skipped)
        self.registry.gauge(
            "service_recovery_failed_applications",
            "Replayed records that failed exactly as they originally did",
        ).set(report.failed)
        self.registry.gauge(
            "service_recovery_torn_tail", "1 if recovery dropped a torn WAL tail"
        ).set(1 if report.torn else 0)

    def _execute(self, request: Any) -> dict[str, Any]:
        """Run one validated request against the engine (lock held)."""
        engine = self.engine
        if isinstance(request, protocol.SubmitRequest):
            return self._execute_submit(request)
        if isinstance(request, protocol.BatchRequest):
            # Items run in order under the already-held engine lock, each
            # through the *single-submit* path (own WAL record, own
            # duplicate/idempotency handling) — a batch of N leaves
            # durable state byte-identical to N individual submits.
            # Per-item failures become per-item error envelopes; the
            # frame itself always answers 200.
            results: list[dict[str, Any]] = []
            for payload in request.jobs:
                results.append(self._execute_batch_item(payload))
            self.registry.counter(
                "service_batch_jobs_total", "Jobs carried inside batch frames"
            ).inc(len(request.jobs))
            return protocol.ok_response("batch", results=results)
        if isinstance(request, protocol.QueryRequest):
            job = engine.query(request.job_id)
            if job is None:
                raise ProtocolError(
                    ErrorCode.NOT_FOUND, f"no submitted job with id {request.job_id}"
                )
            return protocol.ok_response("job", job=protocol.job_payload(job))
        if isinstance(request, protocol.StatsRequest):
            return protocol.ok_response("stats", stats=engine.stats())
        if isinstance(request, protocol.TraceRequest):
            try:
                trace = engine.trace(request.job_id)
            except KeyError:
                raise ProtocolError(
                    ErrorCode.NOT_FOUND,
                    f"no decided job with id {request.job_id}",
                ) from None
            return protocol.ok_response("trace", trace=trace)
        if isinstance(request, protocol.AdvanceRequest):
            if getattr(engine.clock, "live", False):
                raise ProtocolError(
                    ErrorCode.INVALID_FIELD,
                    "advance is only valid under a virtual clock",
                )
            lsn = self._wal_append(
                {"v": protocol.PROTOCOL_VERSION, "type": "advance",
                 "to": request.to},
                False,
            )
            events = self._apply_logged(lsn, lambda: engine.advance(request.to))
            return protocol.ok_response("advanced", t=engine.now, events=events)
        if isinstance(request, protocol.DrainRequest):
            lsn = self._wal_append(
                {"v": protocol.PROTOCOL_VERSION, "type": "drain"}, False
            )
            horizon = self._apply_logged(lsn, engine.drain)
            return protocol.ok_response(
                "drained", t=horizon, metrics=engine.metrics().as_dict()
            )
        if isinstance(request, protocol.CheckpointRequest):
            if request.path is not None:
                checkpoint_mod.save(engine, request.path)
                return protocol.ok_response("checkpoint", path=request.path)
            return protocol.ok_response(
                "checkpoint", snapshot=checkpoint_mod.snapshot(engine)
            )
        raise ProtocolError(  # pragma: no cover - parse_request is exhaustive
            ErrorCode.UNKNOWN_TYPE, f"unhandled request {type(request).__name__}"
        )

    def _execute_submit(self, request: protocol.SubmitRequest) -> dict[str, Any]:
        """The single-submit path (engine lock held by the caller)."""
        engine = self.engine
        job = protocol.job_from_payload(
            request.job, default_submit_time=engine.now
        )
        clamp = bool(getattr(engine.clock, "live", False))
        if job.job_id in engine._known_ids:
            return self._duplicate_submit(job)
        # Stamp the (possibly auto-assigned) id into the logged payload
        # so recovery rebuilds the job under the identical handle.
        logged = dict(request.job)
        logged.setdefault("id", job.job_id)
        # Mint the trace id *before* logging so the WAL frame
        # carries it and recovery reuses the original id instead of
        # re-minting (byte-identical recovered traces).
        trace_id = request.trace
        if trace_id is None and engine.telemetry:
            trace_id = engine.peek_trace_id(job.job_id)
        payload = {
            "v": protocol.PROTOCOL_VERSION, "type": "submit", "job": logged,
        }
        if trace_id is not None:
            payload["trace"] = trace_id
        lsn = self._wal_append(payload, clamp)
        decision = self._apply_logged(
            lsn, lambda: engine.submit(job, clamp_past=clamp, trace=trace_id)
        )
        if lsn is not None:
            engine.wal_lsns[job.job_id] = lsn
        response = protocol.ok_response(
            "decision", decision=decision.as_dict()
        )
        if trace_id is not None:
            response["trace"] = trace_id
        return response

    def _execute_batch_item(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One batch item → the exact envelope a lone submit would get.

        Catches the same per-request failures :meth:`_dispatch` maps to
        error responses, so a bad item (duplicate id, stale submit time,
        invalid field) yields its typed error envelope in place while
        the rest of the frame proceeds.
        """
        try:
            return self._execute_submit(protocol.SubmitRequest(job=payload))
        except ProtocolError as exc:
            return protocol.error_response(exc.code, exc.message)
        except OutOfOrderSubmit as exc:
            return protocol.error_response(ErrorCode.OUT_OF_ORDER, str(exc))
        except DuplicateJob as exc:
            return protocol.error_response(ErrorCode.CONFLICT, str(exc))

    def _duplicate_submit(self, job: Any) -> dict[str, Any]:
        """Resolve a submit whose job id the engine already knows.

        A *retry* of the same submission (identical job parameters) is
        answered idempotently with the originally recorded decision —
        never re-decided, never a blind 409 — which is what lets
        clients retry submits across drops and crashes.  A *different*
        job under a known id is still a hard conflict.
        """
        engine = self.engine
        existing = engine.query(job.job_id)
        prior = engine.decision_for(job.job_id)
        if existing is not None and prior is not None and (
            existing.runtime == job.runtime
            and existing.estimated_runtime == job.estimated_runtime
            and existing.numproc == job.numproc
            and existing.deadline == job.deadline
            and existing.urgency is job.urgency
            and existing.user == job.user
            # submit_time deliberately not compared: a retry arrives
            # later, and live servers clamp stale times anyway.
        ):
            self.registry.counter(
                "service_submit_duplicates_total",
                "Idempotent submit retries answered from the decision log",
            ).inc()
            return protocol.ok_response(
                "decision", decision=prior.as_dict(), duplicate=True
            )
        raise DuplicateJob(
            f"a different job was already submitted under id {job.job_id}; "
            f"ids are the service's job handle and must be unique"
        )

    def close_wal(self) -> None:
        """Flush and close the WAL so no acked record can be lost."""
        if self.wal is not None and not self.wal.closed:
            self.wal.close()

    # -- read-only side endpoints -------------------------------------------
    def stats_response(self) -> dict[str, Any]:
        with self._engine_lock:
            self.engine.poll()
            return protocol.ok_response("stats", stats=self.engine.stats())

    def health_response(self) -> dict[str, Any]:
        """The ``GET /healthz`` payload: threshold-driven health status.

        ``status`` is ``"ok"`` until the deadline-miss error budget is
        fully burned (``slo.burn_rate > 1``) — then ``"degraded"`` —
        and ``"draining"`` during shutdown (served as HTTP 503 so load
        balancers stop routing).  Every field is derived from engine
        counters and the injected clock, so under a ``VirtualClock``
        the payload is deterministic.
        """
        with self._engine_lock:
            self.engine.poll()
            engine = self.engine
            completed = len(engine.rms.completed)
            missed = sum(
                1 for j in engine.rms.completed if j.deadline_met is False
            )
            miss_ratio = missed / completed if completed else 0.0
            burn_rate = miss_ratio / self.slo_deadline_miss_objective
            appended = self.wal.next_lsn - 1 if self.wal is not None else 0
            applied = engine.wal_lsn
            with self._inflight_lock:
                inflight = self._inflight
                shed = self._shed_total
            status = "ok"
            if burn_rate > 1.0:
                status = "degraded"
            if self.draining:
                status = "draining"
            return {
                "ok": status != "draining",
                "status": status,
                "t": engine.now,
                "policy": engine.policy.name,
                "slo": {
                    "deadline_miss_objective": self.slo_deadline_miss_objective,
                    "deadline_miss_ratio": miss_ratio,
                    "burn_rate": burn_rate,
                },
                "wal": {
                    "enabled": self.wal is not None,
                    "appended_lsn": appended,
                    "applied_lsn": applied,
                    "lag": max(0, appended - applied),
                    "base_lsn": (
                        self.wal.base_lsn if self.wal is not None else 0
                    ),
                    "compactions": (
                        self.wal.compactions if self.wal is not None else 0
                    ),
                },
                "backpressure": {
                    "inflight": inflight,
                    "max_inflight": self.max_inflight,
                    "shed_total": shed,
                    "draining": self.draining,
                },
            }

    def _scrape_engine_gauges(self) -> None:
        """Refresh scrape-time gauges derived from engine state.

        The cumulative request counters update inline; everything that
        lives *inside* the engine (kernel trace accounting, admission
        cache counters, windowed telemetry) is sampled here, under the
        engine lock, each time ``/metrics`` is rendered.
        """
        with self._engine_lock:
            engine = self.engine
            trace = engine.sim.trace
            if trace is not None:
                self.registry.gauge(
                    "engine_trace_events_recorded",
                    "Events ever recorded by the kernel EventTrace",
                ).set(trace.total_recorded)
                self.registry.gauge(
                    "engine_trace_events_dropped",
                    "EventTrace records evicted at capacity (non-zero means "
                    "the retained window is truncated)",
                ).set(trace.dropped)
            for key, value in sorted(engine.policy.cache_stats.items()):
                self.registry.gauge(
                    "engine_cache_stat",
                    "Admission fast-path counters (see docs/PERFORMANCE.md)",
                    stat=key,
                ).set(value)
            if engine.window is not None:
                snap = engine.window.snapshot(engine.now)
                for name, pol in snap["policies"].items():
                    self.registry.gauge(
                        "engine_window_submitted",
                        "Jobs submitted inside the telemetry window",
                        policy=name,
                    ).set(pol["submitted"])
                    self.registry.gauge(
                        "engine_window_rejected",
                        "Jobs rejected inside the telemetry window",
                        policy=name,
                    ).set(pol["rejected"])
                    self.registry.gauge(
                        "engine_window_loss_ratio",
                        "Windowed rejected/submitted ratio per policy",
                        policy=name,
                    ).set(pol["loss_ratio"])

    def prometheus_text(self) -> str:
        from repro.obs.exporters import prometheus_text

        self._scrape_engine_gauges()
        return prometheus_text(self.registry)


class _Handler(BaseHTTPRequestHandler):
    """Maps HTTP to the service; all logic lives in :class:`AdmissionService`."""

    server_version = "repro-admission/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AdmissionService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:  # quiet by default
        log.debug("%s %s", self.address_string(), fmt % args)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = protocol.encode(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        retry_after = payload.get("error", {}).get("retry_after")
        if retry_after is not None:
            # HTTP wants integral seconds; round up so clients never
            # come back earlier than the JSON hint says.
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- verbs -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path == "/healthz":
            health = self.service.health_response()
            self._send_json(200 if health["ok"] else 503, health)
        elif self.path == "/v1/stats":
            self._send_json(200, self.service.stats_response())
        elif self.path == "/metrics":
            self._send_text(200, self.service.prometheus_text(),
                            "text/plain; version=0.0.4; charset=utf-8")
        else:
            self._send_json(
                404, protocol.error_response(ErrorCode.NOT_FOUND,
                                             f"no such endpoint {self.path!r}"),
            )

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path != "/v1/rpc":
            self._send_json(
                404, protocol.error_response(ErrorCode.NOT_FOUND,
                                             f"no such endpoint {self.path!r}"),
            )
            return
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self._send_json(
                411, protocol.error_response(ErrorCode.TOO_LARGE,
                                             "Content-Length header is required"),
            )
            return
        try:
            length = int(length_header)
        except ValueError:
            self._send_json(
                400, protocol.error_response(ErrorCode.BAD_JSON,
                                             "malformed Content-Length"),
            )
            return
        if length > self.service.max_request_bytes:
            self._send_json(
                413, protocol.error_response(
                    ErrorCode.TOO_LARGE,
                    f"request of {length} bytes exceeds the "
                    f"{self.service.max_request_bytes}-byte limit",
                ),
            )
            return
        body = self.rfile.read(length)
        try:
            status, payload = self.service.handle(body)
        except DropRequest:
            # Injected network loss: vanish without a response, exactly
            # what a dropped packet looks like from the client's side.
            self.close_connection = True
            return
        self._send_json(status, payload)


class _TrackingServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` that remembers its handler threads.

    socketserver does not track daemon handler threads at all (and
    ``server_close`` joins nothing for them), so without this a
    graceful stop could close the WAL and snapshot the engine while a
    handler is still mid-mutation.  Tracking them lets ``stop()`` join
    with a bounded timeout and *report* a wedged handler instead of
    silently racing it.
    """

    daemon_threads = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._handler_threads: list[threading.Thread] = []
        self._handler_lock = threading.Lock()

    def process_request(self, request: Any, client_address: Any) -> None:
        thread = threading.Thread(
            target=self.process_request_thread,
            args=(request, client_address),
            name=f"repro-handler-{client_address}",
            daemon=True,
        )
        with self._handler_lock:
            self._handler_threads = [
                t for t in self._handler_threads if t.is_alive()
            ]
            self._handler_threads.append(thread)
        thread.start()

    def alive_handlers(self) -> list[threading.Thread]:
        with self._handler_lock:
            self._handler_threads = [
                t for t in self._handler_threads if t.is_alive()
            ]
            return list(self._handler_threads)


class ServiceServer:
    """Lifecycle wrapper: bind, serve (optionally in-thread), shut down.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.  :meth:`start` runs the accept loop in a daemon
    thread (tests, embedded use); :meth:`serve_forever` blocks (the
    CLI).  :meth:`stop` is graceful: new requests are refused with
    ``shutting_down`` while the accept loop winds down, and an optional
    exit checkpoint is written.
    """

    def __init__(
        self,
        service: AdmissionService,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_on_exit: Optional[str] = None,
    ) -> None:
        self.service = service
        self.checkpoint_on_exit = checkpoint_on_exit
        self._httpd = _TrackingServer((host, port), _Handler)
        self._httpd.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        log.info("admission service listening on %s", self.url)
        return self

    def serve_forever(self) -> None:
        log.info("admission service listening on %s", self.url)
        self._httpd.serve_forever()

    def stop(self) -> bool:
        """Drain, stop the accept loop, and close the WAL.

        Returns ``True`` on a clean shutdown.  Any thread — the accept
        loop or a request handler — still alive after the 5 s join is
        *reported* (logged and reflected in the return value) rather
        than silently abandoned, so operators and tests can tell a
        wedged handler from a clean exit.
        """
        self.service.draining = True
        self._httpd.shutdown()
        self._httpd.server_close()
        clean = True
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            if self._thread.is_alive():
                clean = False
                log.error(
                    "server thread %s is still alive 5s after shutdown; "
                    "a request handler is wedged — its work may be lost",
                    self._thread.name,
                )
            else:
                self._thread = None
        # server_close() does not join daemon handler threads: wait for
        # in-flight requests to leave the engine before touching the WAL
        # or the exit checkpoint.
        deadline = monotonic() + 5.0
        wedged = []
        for worker in self._httpd.alive_handlers():
            worker.join(timeout=max(0.0, deadline - monotonic()))
            if worker.is_alive():
                wedged.append(worker.name)
        if wedged:
            clean = False
            log.error(
                "%d handler thread(s) still alive 5s after shutdown (%s); "
                "closing the WAL under them — their work may be lost",
                len(wedged), ", ".join(wedged),
            )
        # Flush/close the WAL only after the accept loop and handlers
        # are down, so no acked record can race the close and be lost
        # on graceful exit.
        self.service.close_wal()
        if self.checkpoint_on_exit is not None:
            # The engine lock keeps a straggling (wedged) handler from
            # mutating state mid-snapshot; bounded so a handler wedged
            # *inside* the lock cannot hang shutdown forever.
            if self.service._engine_lock.acquire(timeout=5.0):
                try:
                    checkpoint_mod.save(
                        self.service.engine, self.checkpoint_on_exit
                    )
                    log.info(
                        "wrote exit checkpoint to %s", self.checkpoint_on_exit
                    )
                finally:
                    self.service._engine_lock.release()
            else:
                clean = False
                log.error(
                    "could not acquire the engine lock within 5s; skipping "
                    "the exit checkpoint rather than snapshotting "
                    "mid-mutation state",
                )
        return clean

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


__all__ = ["AdmissionService", "LATENCY_BUCKETS", "ServiceServer"]
