"""Versioned JSON request/response protocol of the admission service.

Every request is one JSON object carrying the protocol version and a
request type::

    {"v": 1, "type": "submit", "job": {"submit_time": 10.0,
     "runtime": 120.0, "estimated_runtime": 180.0, "numproc": 4,
     "deadline": 600.0}}

and every response echoes the version with an ``ok`` flag::

    {"v": 1, "ok": true, "type": "decision", "decision": {...}}
    {"v": 1, "ok": false, "error": {"code": "out_of_order", "message": ...}}

Validation is **strict**: unknown request types, unknown fields, wrong
JSON types and out-of-range values are all rejected with a typed
:class:`ProtocolError` whose ``code`` is machine-checkable (and whose
``http_status`` the HTTP server reuses).  Strictness is what lets the
schema version actually mean something — a v2 field sent to a v1
server fails loudly instead of being silently dropped.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.cluster.job import Job, UrgencyClass

#: Protocol schema version this module speaks.
PROTOCOL_VERSION = 1

#: Request types a v1 server understands.
REQUEST_TYPES = (
    "submit", "batch", "query", "stats", "advance", "drain", "checkpoint", "trace"
)

#: Upper bound on jobs in one batch frame.  The HTTP body-size limit
#: already bounds the bytes; this bounds the per-request work so one
#: frame cannot monopolise the engine lock indefinitely.
MAX_BATCH_JOBS = 4096


class ErrorCode:
    """Machine-checkable error codes carried in ``error.code``."""

    BAD_JSON = "bad_json"                  # body is not a JSON object
    BAD_VERSION = "bad_version"            # missing/unsupported "v"
    UNKNOWN_TYPE = "unknown_type"          # "type" not in REQUEST_TYPES
    INVALID_FIELD = "invalid_field"        # wrong type / range / unknown key
    OUT_OF_ORDER = "out_of_order"          # submit_time before the clock
    CONFLICT = "conflict"                  # job id already submitted
    NOT_FOUND = "not_found"                # query for an unknown job
    TOO_LARGE = "too_large"                # body over the size limit
    OVERLOADED = "overloaded"              # queue-depth backpressure
    SHUTTING_DOWN = "shutting_down"        # server is draining
    INTERNAL = "internal"                  # unexpected server-side failure
    INJECTED = "injected"                  # scripted fault-injection failure
    UNAVAILABLE = "unavailable"            # client-side: transport failure
    #                                        (connection refused/reset/timeout);
    #                                        synthesised by clients, never sent
    #                                        by a server
    PARKING_FULL = "parking_full"          # router-side: the owning shard is
    #                                        down and its failover parking lot
    #                                        is at capacity


#: HTTP status the server maps each code onto.
HTTP_STATUS = {
    ErrorCode.BAD_JSON: 400,
    ErrorCode.BAD_VERSION: 400,
    ErrorCode.UNKNOWN_TYPE: 400,
    ErrorCode.INVALID_FIELD: 400,
    ErrorCode.OUT_OF_ORDER: 409,
    ErrorCode.CONFLICT: 409,
    ErrorCode.NOT_FOUND: 404,
    ErrorCode.TOO_LARGE: 413,
    ErrorCode.OVERLOADED: 503,
    ErrorCode.SHUTTING_DOWN: 503,
    ErrorCode.INTERNAL: 500,
    ErrorCode.INJECTED: 500,
    ErrorCode.PARKING_FULL: 503,
}

#: Error codes a client may safely retry (with backoff).  4xx codes are
#: deliberate refusals and retrying them verbatim cannot succeed.
RETRYABLE_CODES = frozenset({
    ErrorCode.OVERLOADED, ErrorCode.SHUTTING_DOWN, ErrorCode.INTERNAL,
    ErrorCode.INJECTED, ErrorCode.UNAVAILABLE, ErrorCode.PARKING_FULL,
})


class ProtocolError(Exception):
    """A request the protocol refuses, with a typed code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message

    @property
    def http_status(self) -> int:
        return HTTP_STATUS.get(self.code, 400)


# -- typed requests -----------------------------------------------------------

@dataclass(frozen=True)
class SubmitRequest:
    """Admit one job (``job`` follows the :func:`job_from_payload` schema).

    ``trace`` optionally pins the deterministic trace id for this
    submission.  Live clients normally omit it (the engine mints one);
    WAL recovery sends the id the original run logged so recovered
    traces stay byte-identical.
    """

    job: dict[str, Any]
    trace: Optional[str] = None


@dataclass(frozen=True)
class BatchRequest:
    """Admit several jobs in one round trip.

    ``jobs`` is an ordered tuple of job payloads, each following the
    exact :func:`job_from_payload` schema of ``submit.job``.  The server
    executes the items **in order under one engine-lock acquisition**,
    appending one WAL record per item — so a batch of N is byte-identical
    in durable state to N individual submits, and the response carries
    one full per-item envelope per job (a decision, or a per-item typed
    error; one bad item never voids its siblings).
    """

    jobs: tuple[dict[str, Any], ...]


@dataclass(frozen=True)
class QueryRequest:
    """Look up one submitted job by id."""

    job_id: int


@dataclass(frozen=True)
class StatsRequest:
    """Engine counters snapshot."""


@dataclass(frozen=True)
class AdvanceRequest:
    """Drive the virtual clock to ``to`` (simulated seconds)."""

    to: float


@dataclass(frozen=True)
class DrainRequest:
    """Run every pending event; respond with the final horizon."""


@dataclass(frozen=True)
class CheckpointRequest:
    """Snapshot engine state — inline, or to ``path`` on the server."""

    path: Optional[str] = None


@dataclass(frozen=True)
class TraceRequest:
    """Reconstruct the lifecycle span tree of one decided job."""

    job_id: int


_REQUEST_CLASSES = {
    "submit": SubmitRequest,
    "batch": BatchRequest,
    "query": QueryRequest,
    "stats": StatsRequest,
    "advance": AdvanceRequest,
    "drain": DrainRequest,
    "checkpoint": CheckpointRequest,
    "trace": TraceRequest,
}

Request = Any  # union of the dataclasses above


# -- field validation helpers -------------------------------------------------

def _require_mapping(obj: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(obj, Mapping):
        raise ProtocolError(
            ErrorCode.BAD_JSON, f"{what} must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def _no_unknown_keys(obj: Mapping[str, Any], allowed: frozenset, what: str) -> None:
    unknown = sorted(set(obj) - allowed)
    if unknown:
        raise ProtocolError(
            ErrorCode.INVALID_FIELD,
            f"unknown {what} field(s): {', '.join(unknown)}",
        )


def _number(obj: Mapping[str, Any], key: str, what: str, *, required: bool = True,
            minimum: Optional[float] = None, exclusive: bool = False) -> Optional[float]:
    if key not in obj:
        if required:
            raise ProtocolError(ErrorCode.INVALID_FIELD, f"{what}.{key} is required")
        return None
    value = obj[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            ErrorCode.INVALID_FIELD,
            f"{what}.{key} must be a number, got {type(value).__name__}",
        )
    value = float(value)
    if not math.isfinite(value):
        raise ProtocolError(ErrorCode.INVALID_FIELD, f"{what}.{key} must be finite")
    if minimum is not None:
        if exclusive and value <= minimum:
            raise ProtocolError(
                ErrorCode.INVALID_FIELD, f"{what}.{key} must be > {minimum:g}, got {value:g}"
            )
        if not exclusive and value < minimum:
            raise ProtocolError(
                ErrorCode.INVALID_FIELD, f"{what}.{key} must be >= {minimum:g}, got {value:g}"
            )
    return value


def _integer(obj: Mapping[str, Any], key: str, what: str, *, required: bool = True,
             minimum: Optional[int] = None) -> Optional[int]:
    if key not in obj:
        if required:
            raise ProtocolError(ErrorCode.INVALID_FIELD, f"{what}.{key} is required")
        return None
    value = obj[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            ErrorCode.INVALID_FIELD,
            f"{what}.{key} must be an integer, got {type(value).__name__}",
        )
    if minimum is not None and value < minimum:
        raise ProtocolError(
            ErrorCode.INVALID_FIELD, f"{what}.{key} must be >= {minimum}, got {value}"
        )
    return value


# -- job payloads -------------------------------------------------------------

_JOB_FIELDS = frozenset(
    {"id", "submit_time", "runtime", "estimated_runtime", "numproc",
     "deadline", "urgency", "user"}
)


def job_from_payload(payload: Any, default_submit_time: Optional[float] = None) -> Job:
    """Build a :class:`~repro.cluster.job.Job` from a validated ``job`` object.

    ``runtime`` is optional and defaults to ``estimated_runtime`` — a
    live client does not know the actual runtime; the simulation-backed
    service still needs one, and trusting the estimate is the neutral
    choice.  ``submit_time`` defaults to ``default_submit_time`` (the
    live server passes its current clock).
    """
    payload = _require_mapping(payload, "job")
    _no_unknown_keys(payload, _JOB_FIELDS, "job")
    est = _number(payload, "estimated_runtime", "job", minimum=0.0, exclusive=True)
    runtime = _number(payload, "runtime", "job", required=False,
                      minimum=0.0, exclusive=True)
    deadline = _number(payload, "deadline", "job", minimum=0.0, exclusive=True)
    numproc = _integer(payload, "numproc", "job", required=False, minimum=1)
    submit_time = _number(payload, "submit_time", "job", required=False, minimum=0.0)
    if submit_time is None:
        if default_submit_time is None:
            raise ProtocolError(ErrorCode.INVALID_FIELD, "job.submit_time is required")
        submit_time = default_submit_time
    job_id = _integer(payload, "id", "job", required=False, minimum=1)
    urgency = payload.get("urgency", "low")
    if urgency not in ("low", "high"):
        raise ProtocolError(
            ErrorCode.INVALID_FIELD, f"job.urgency must be 'low' or 'high', got {urgency!r}"
        )
    user = payload.get("user")
    if user is not None and not isinstance(user, str):
        raise ProtocolError(ErrorCode.INVALID_FIELD, "job.user must be a string")
    try:
        return Job(
            runtime=runtime if runtime is not None else est,
            estimated_runtime=est,
            numproc=numproc if numproc is not None else 1,
            deadline=deadline,
            submit_time=submit_time,
            urgency=UrgencyClass.HIGH if urgency == "high" else UrgencyClass.LOW,
            user=user,
            job_id=job_id,
        )
    except ValueError as exc:  # Job's own validation (defence in depth)
        raise ProtocolError(ErrorCode.INVALID_FIELD, str(exc)) from exc


def job_payload(job: Job) -> dict[str, Any]:
    """The JSON view of a submitted job (``query`` responses)."""
    out: dict[str, Any] = {
        "id": job.job_id,
        "state": job.state.value,
        "submit_time": job.submit_time,
        "estimated_runtime": job.estimated_runtime,
        "numproc": job.numproc,
        "deadline": job.deadline,
        "urgency": job.urgency.value,
    }
    if job.user is not None:
        out["user"] = job.user
    if job.start_time is not None:
        out["start_time"] = job.start_time
    if job.finish_time is not None:
        out["finish_time"] = job.finish_time
        out["deadline_met"] = bool(job.deadline_met)
    if job.reject_reason:
        out["reject_reason"] = job.reject_reason
    return out


# -- request parsing ----------------------------------------------------------

_TOP_FIELDS = {
    "submit": frozenset({"v", "type", "job", "trace"}),
    "batch": frozenset({"v", "type", "jobs"}),
    "query": frozenset({"v", "type", "job"}),
    "stats": frozenset({"v", "type"}),
    "advance": frozenset({"v", "type", "to"}),
    "drain": frozenset({"v", "type"}),
    "checkpoint": frozenset({"v", "type", "path"}),
    "trace": frozenset({"v", "type", "job"}),
}


def parse_request(data: Any) -> Request:
    """Validate a decoded JSON body into a typed request.

    Accepts the raw ``bytes``/``str`` body or an already-decoded
    object; raises :class:`ProtocolError` on any violation.
    """
    if isinstance(data, (bytes, bytearray)):
        try:
            data = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(ErrorCode.BAD_JSON, f"body is not UTF-8: {exc}") from exc
    if isinstance(data, str):
        try:
            data = json.loads(data)
        except json.JSONDecodeError as exc:
            raise ProtocolError(ErrorCode.BAD_JSON, f"invalid JSON: {exc}") from exc
    obj = _require_mapping(data, "request")

    version = obj.get("v")
    if version is None:
        raise ProtocolError(ErrorCode.BAD_VERSION, "missing protocol version field 'v'")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ErrorCode.BAD_VERSION,
            f"unsupported protocol version {version!r} (this server speaks "
            f"v{PROTOCOL_VERSION})",
        )

    req_type = obj.get("type")
    if req_type not in _REQUEST_CLASSES:
        raise ProtocolError(
            ErrorCode.UNKNOWN_TYPE,
            f"unknown request type {req_type!r}; expected one of "
            f"{', '.join(REQUEST_TYPES)}",
        )
    _no_unknown_keys(obj, _TOP_FIELDS[req_type], "request")

    if req_type == "submit":
        if "job" not in obj:
            raise ProtocolError(ErrorCode.INVALID_FIELD, "request.job is required")
        trace = obj.get("trace")
        if trace is not None and not isinstance(trace, str):
            raise ProtocolError(ErrorCode.INVALID_FIELD, "request.trace must be a string")
        return SubmitRequest(
            job=dict(_require_mapping(obj["job"], "job")), trace=trace
        )
    if req_type == "batch":
        jobs = obj.get("jobs")
        if not isinstance(jobs, list):
            raise ProtocolError(
                ErrorCode.INVALID_FIELD,
                "request.jobs must be an array of job objects",
            )
        if not jobs:
            raise ProtocolError(ErrorCode.INVALID_FIELD, "request.jobs must not be empty")
        if len(jobs) > MAX_BATCH_JOBS:
            raise ProtocolError(
                ErrorCode.TOO_LARGE,
                f"batch of {len(jobs)} jobs exceeds the limit of {MAX_BATCH_JOBS}",
            )
        return BatchRequest(
            jobs=tuple(
                dict(_require_mapping(item, f"jobs[{i}]")) for i, item in enumerate(jobs)
            )
        )
    if req_type == "query":
        job_id = _integer(obj, "job", "request", minimum=1)
        assert job_id is not None
        return QueryRequest(job_id=job_id)
    if req_type == "trace":
        job_id = _integer(obj, "job", "request", minimum=1)
        assert job_id is not None
        return TraceRequest(job_id=job_id)
    if req_type == "advance":
        to = _number(obj, "to", "request", minimum=0.0)
        assert to is not None
        return AdvanceRequest(to=to)
    if req_type == "checkpoint":
        path = obj.get("path")
        if path is not None and not isinstance(path, str):
            raise ProtocolError(ErrorCode.INVALID_FIELD, "request.path must be a string")
        return CheckpointRequest(path=path)
    if req_type == "stats":
        return StatsRequest()
    return DrainRequest()


# -- response construction ----------------------------------------------------

def ok_response(rtype: str, **payload: Any) -> dict[str, Any]:
    """A successful response envelope."""
    return {"v": PROTOCOL_VERSION, "ok": True, "type": rtype, **payload}


def error_response(
    code: str, message: str, retry_after: Optional[float] = None
) -> dict[str, Any]:
    """A failure response envelope with a typed code.

    ``retry_after`` (seconds) rides inside the error object so JSON
    clients see the same backoff hint the HTTP ``Retry-After`` header
    carries.
    """
    error: dict[str, Any] = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {
        "v": PROTOCOL_VERSION,
        "ok": False,
        "error": error,
    }


def encode(response: dict[str, Any]) -> bytes:
    """Canonical wire form: sorted keys, compact separators, UTF-8."""
    return json.dumps(
        response, sort_keys=True, separators=(",", ":"), ensure_ascii=False,
        allow_nan=False,
    ).encode("utf-8")


__all__ = [
    "AdvanceRequest",
    "BatchRequest",
    "CheckpointRequest",
    "DrainRequest",
    "ErrorCode",
    "MAX_BATCH_JOBS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryRequest",
    "REQUEST_TYPES",
    "RETRYABLE_CODES",
    "StatsRequest",
    "SubmitRequest",
    "TraceRequest",
    "encode",
    "error_response",
    "job_from_payload",
    "job_payload",
    "ok_response",
    "parse_request",
]
