"""Pluggable clocks for the online admission engine.

The engine itself only ever reads simulated time from its kernel; the
clock decides *how far* the kernel is allowed to advance between
requests:

* :class:`VirtualClock` — time is driven entirely by the workload
  (each submitted job drags the clock to its submit time).  This is the
  mode for tests, deterministic trace replay and parity with the batch
  runner: the engine produces exactly the event sequence a closed
  ``submit_all`` run would.
* :class:`WallClock` — simulated seconds track real (monotonic)
  seconds, optionally sped up.  A live server polls the clock before
  each request and advances the kernel to "now", so completions happen
  in real time between arrivals.

Both expose the same two-method surface, so the engine never branches
on the concrete type beyond the ``live`` flag.
"""

from __future__ import annotations

import time


class VirtualClock:
    """Workload-driven time: the engine advances only on demand."""

    #: A live clock forces the engine to chase real time; a virtual one
    #: never does.
    live = False

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)

    def now(self) -> float:
        """Latest simulated instant the engine has been driven to."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Record that the engine reached simulated time ``t``."""
        if t > self._now:
            self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualClock now={self._now:.6g}>"


class WallClock:
    """Real-time mapping: ``sim seconds = (monotonic − epoch) × speedup``.

    Parameters
    ----------
    speedup:
        Simulated seconds per wall-clock second (1.0 = real time).
        Replaying a month-long trace at ``speedup=86400`` compresses
        each day into a second.
    start_time:
        Simulated instant corresponding to the moment of construction.
    """

    live = True

    def __init__(self, speedup: float = 1.0, start_time: float = 0.0) -> None:
        if speedup <= 0:
            raise ValueError(f"speedup must be > 0, got {speedup}")
        self.speedup = float(speedup)
        self.start_time = float(start_time)
        self._epoch = time.monotonic()

    def now(self) -> float:
        """Current simulated time derived from the monotonic wall clock."""
        return self.start_time + (time.monotonic() - self._epoch) * self.speedup

    def advance_to(self, t: float) -> None:
        """No-op: wall time advances on its own."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WallClock speedup={self.speedup:g} now={self.now():.6g}>"
