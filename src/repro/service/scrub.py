"""Offline integrity scrubber for WALs, archive segments, and checkpoints.

``repro scrub`` answers one operator question: *can every byte of this
fleet's durable state still be trusted?*  For each shard it verifies

* every WAL frame checksum (crc32) in the active log and in each
  archive segment produced by compaction;
* LSN chain continuity — archive segments must chain gaplessly into
  one another and into the active tail's ``base_lsn``;
* checkpoint SHA-256s — both the compaction reference recorded in a
  compacted WAL's header and the content checksum embedded in every
  checkpoint document.

Findings are graded: **corruption** (checksum mismatch, broken chain,
torn archive segment) fails the scrub; **io** (missing/unreadable
files) is an environment problem, reported with its own exit code; a
torn tail on the *active* log is only a **warning** — it is exactly
what a crash leaves behind and recovery truncates it safely.

Exit codes: ``0`` clean (warnings allowed), ``1`` corruption found,
``2`` usage or I/O error.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.service import checkpoint as checkpoint_mod
from repro.service import wal as wal_mod
from repro.service.sharding.paths import shard_path

__all__ = [
    "EXIT_CLEAN",
    "EXIT_CORRUPT",
    "EXIT_IO",
    "ScrubFinding",
    "ScrubReport",
    "scrub_checkpoint",
    "scrub_fleet",
    "scrub_wal",
]

EXIT_CLEAN = 0
EXIT_CORRUPT = 1
EXIT_IO = 2

#: Finding severities, worst first (exit code picks the worst present).
_SEVERITIES = ("corruption", "io", "warning")


@dataclass(frozen=True)
class ScrubFinding:
    """One defect (or notable condition) found during a scrub."""

    path: str
    kind: str  # one of _SEVERITIES
    detail: str

    def as_dict(self) -> dict[str, Any]:
        return {"path": self.path, "kind": self.kind, "detail": self.detail}


@dataclass
class ScrubReport:
    """Aggregate result of scrubbing one or many shards."""

    files: int = 0
    records: int = 0
    segments: int = 0
    checkpoints: int = 0
    findings: list[ScrubFinding] = field(default_factory=list)

    def add(self, path: str, kind: str, detail: str) -> None:
        if kind not in _SEVERITIES:
            raise ValueError(f"unknown finding kind {kind!r}")
        self.findings.append(ScrubFinding(path=path, kind=kind, detail=detail))

    @property
    def corrupt(self) -> bool:
        return any(f.kind == "corruption" for f in self.findings)

    @property
    def io_errors(self) -> bool:
        return any(f.kind == "io" for f in self.findings)

    @property
    def exit_code(self) -> int:
        if self.corrupt:
            return EXIT_CORRUPT
        if self.io_errors:
            return EXIT_IO
        return EXIT_CLEAN

    def as_dict(self) -> dict[str, Any]:
        return {
            "files": self.files,
            "records": self.records,
            "segments": self.segments,
            "checkpoints": self.checkpoints,
            "clean": self.exit_code == EXIT_CLEAN,
            "findings": [f.as_dict() for f in self.findings],
        }

    def __str__(self) -> str:
        base = (
            f"scrubbed {self.files} file(s): {self.records} records, "
            f"{self.segments} archive segment(s), "
            f"{self.checkpoints} checkpoint(s)"
        )
        if not self.findings:
            return base + " — clean"
        worst = min(_SEVERITIES.index(f.kind) for f in self.findings)
        return base + f" — {len(self.findings)} finding(s), worst: {_SEVERITIES[worst]}"


def scrub_checkpoint(path: str, report: ScrubReport) -> Optional[dict[str, Any]]:
    """Verify one checkpoint file's embedded content checksum.

    Returns the parsed document (checksum entry removed) when readable,
    recording findings on the report either way.
    """
    try:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
    except OSError as exc:
        report.add(path, "io", f"cannot read checkpoint: {exc}")
        return None
    except json.JSONDecodeError as exc:
        report.add(path, "corruption", f"invalid checkpoint JSON: {exc}")
        return None
    report.checkpoints += 1
    if not isinstance(doc, dict):
        report.add(path, "corruption", "checkpoint is not a JSON object")
        return None
    checksum = doc.pop("checksum", None)
    if checksum is None:
        report.add(path, "warning", "checkpoint carries no content checksum")
        return doc
    if not isinstance(checksum, dict) or checksum.get("algo") != "sha256":
        report.add(path, "corruption", f"unsupported checksum {checksum!r}")
        return doc
    actual = checkpoint_mod._content_checksum(doc)
    if actual != checksum.get("hex"):
        report.add(
            path, "corruption",
            f"content checksum mismatch (stored {checksum.get('hex')}, "
            f"computed {actual})",
        )
    return doc


def _scrub_segment_chain(path: str, report: ScrubReport) -> Optional[int]:
    """Verify every archive segment of ``path``; returns the chain's last LSN."""
    prev_last: Optional[int] = None
    for first, last, seg_path in wal_mod.list_segments(path):
        try:
            result = wal_mod.read_wal(seg_path)
        except wal_mod.WalError as exc:
            report.add(seg_path, "corruption", str(exc))
            return None
        report.files += 1
        report.segments += 1
        report.records += len(result.records)
        if result.torn is not None:
            # Archive segments are written whole and never appended to;
            # a torn frame there is corruption, not a crash artifact.
            report.add(seg_path, "corruption", f"torn frame in archive: {result.torn}")
            return None
        if not result.records:
            report.add(seg_path, "corruption", "archive segment holds no records")
            return None
        if (result.records[0].lsn, result.records[-1].lsn) != (first, last):
            report.add(
                seg_path, "corruption",
                f"segment name claims lsn {first}-{last} but contents are "
                f"{result.records[0].lsn}-{result.records[-1].lsn}",
            )
            return None
        if prev_last is not None and first != prev_last + 1:
            report.add(
                seg_path, "corruption",
                f"segment chain gap: previous archive ends at lsn {prev_last}, "
                f"this one starts at {first}",
            )
            return None
        prev_last = last
    return prev_last


def scrub_wal(path: str, report: Optional[ScrubReport] = None) -> ScrubReport:
    """Scrub one shard's WAL: archive segments, active tail, checkpoint ref."""
    report = report if report is not None else ScrubReport()
    if not os.path.exists(path):
        report.add(path, "io", "WAL file does not exist")
        return report

    chain_last = _scrub_segment_chain(path, report)

    try:
        result = wal_mod.read_wal(path)
    except wal_mod.WalError as exc:
        report.add(path, "corruption", str(exc))
        return report
    report.files += 1
    report.records += len(result.records)
    if result.torn is not None:
        report.add(
            path, "warning",
            f"torn tail ({result.torn}); recovery will truncate it safely",
        )
    if chain_last is not None and result.base_lsn != chain_last:
        report.add(
            path, "corruption",
            f"active tail base_lsn={result.base_lsn} does not continue the "
            f"archive chain ending at lsn {chain_last}",
        )

    try:
        checkpoint_path = wal_mod.resolve_checkpoint_ref(path, result.header)
    except wal_mod.WalError as exc:
        report.add(path, "corruption", str(exc))
        return report
    if checkpoint_path is not None:
        doc = scrub_checkpoint(checkpoint_path, report)
        if doc is not None:
            cp_lsn = int(doc.get("wal_lsn", 0))
            if cp_lsn != result.base_lsn:
                report.add(
                    checkpoint_path, "corruption",
                    f"checkpoint stops at lsn={cp_lsn} but the tail's "
                    f"base_lsn is {result.base_lsn}",
                )
    elif result.base_lsn:
        report.add(
            path, "corruption",
            f"log compacted through lsn={result.base_lsn} but the header "
            f"names no checkpoint to recover the prefix from",
        )
    return report


def scrub_fleet(
    wal_base: str,
    shards: int = 1,
    checkpoints: Optional[list[str]] = None,
) -> ScrubReport:
    """Scrub every shard of a fleet plus any explicitly named checkpoints.

    ``shards == 1`` scrubs ``wal_base`` itself; larger fleets scrub the
    namespaced ``shard_path`` variants, mirroring how ``repro serve
    --shards N`` lays files out.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    report = ScrubReport()
    if shards == 1:
        scrub_wal(wal_base, report)
    else:
        for shard_id in range(shards):
            scrub_wal(shard_path(wal_base, shard_id, shards), report)
    for cp in checkpoints or []:
        scrub_checkpoint(cp, report)
    return report
