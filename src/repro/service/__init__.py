"""Online admission-control service.

The batch pipeline (``repro.experiments``) answers "what would policy X
have done over this whole trace"; this package answers the production
question — "this job is arriving *now*: admit it?" — with the same
kernel, cluster and policies behind an incremental API:

* :mod:`~repro.service.engine` — the :class:`AdmissionEngine`:
  ``submit`` one job at a time, ``advance``/``drain`` the clock;
* :mod:`~repro.service.clock` — virtual (workload-driven) and
  wall-clock (live, sped-up) time sources;
* :mod:`~repro.service.protocol` — the versioned JSON request/response
  schema with strict validation and typed error codes;
* :mod:`~repro.service.server` — stdlib HTTP front-end with
  request-size/queue-depth backpressure (``repro serve``);
* :mod:`~repro.service.checkpoint` — deterministic snapshot/restore of
  live engine state;
* :mod:`~repro.service.replay` / :mod:`~repro.service.loadgen` —
  deterministic in-process trace replay and an open-loop HTTP load
  generator (``repro replay``).

See ``docs/SERVICE.md``.
"""

from repro.service.checkpoint import (
    CheckpointError,
    load,
    restore,
    save,
    snapshot,
)
from repro.service.clock import VirtualClock, WallClock
from repro.service.engine import (
    AdmissionEngine,
    Decision,
    DuplicateJob,
    EngineConfig,
    EngineError,
    OutOfOrderSubmit,
    engine_for_scenario,
)
from repro.service.loadgen import LoadGenerator, LoadReport, ServiceClient
from repro.service.protocol import PROTOCOL_VERSION, ErrorCode, ProtocolError
from repro.service.replay import ReplayReport, replay_jobs, replay_scenario
from repro.service.server import AdmissionService, ServiceServer

__all__ = [
    "AdmissionEngine",
    "AdmissionService",
    "CheckpointError",
    "Decision",
    "DuplicateJob",
    "EngineConfig",
    "EngineError",
    "ErrorCode",
    "LoadGenerator",
    "LoadReport",
    "OutOfOrderSubmit",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReplayReport",
    "ServiceClient",
    "ServiceServer",
    "VirtualClock",
    "WallClock",
    "engine_for_scenario",
    "load",
    "replay_jobs",
    "replay_scenario",
    "restore",
    "save",
    "snapshot",
]
