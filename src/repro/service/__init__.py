"""Online admission-control service.

The batch pipeline (``repro.experiments``) answers "what would policy X
have done over this whole trace"; this package answers the production
question — "this job is arriving *now*: admit it?" — with the same
kernel, cluster and policies behind an incremental API:

* :mod:`~repro.service.engine` — the :class:`AdmissionEngine`:
  ``submit`` one job at a time, ``advance``/``drain`` the clock;
* :mod:`~repro.service.clock` — virtual (workload-driven) and
  wall-clock (live, sped-up) time sources;
* :mod:`~repro.service.protocol` — the versioned JSON request/response
  schema with strict validation and typed error codes;
* :mod:`~repro.service.server` — stdlib HTTP front-end with
  request-size/queue-depth backpressure (``repro serve``);
* :mod:`~repro.service.checkpoint` — deterministic snapshot/restore of
  live engine state (atomic, checksummed writes);
* :mod:`~repro.service.wal` — write-ahead log + crash recovery: every
  mutating request is durably logged before it is applied, and
  ``repro recover`` / ``repro serve --wal`` replay the log on top of
  the latest checkpoint (``kill -9``-safe);
* :mod:`~repro.service.faults` — deterministic, seeded fault injection
  (drops, 5xx, delays, crash points, torn WAL tails) for chaos tests;
* :mod:`~repro.service.client` — retrying client with exponential
  backoff + jitter, Retry-After awareness, idempotent submits and a
  circuit breaker;
* :mod:`~repro.service.replay` / :mod:`~repro.service.loadgen` —
  deterministic in-process trace replay and an open-loop HTTP load
  generator (``repro replay``);
* :mod:`~repro.service.sharding` — the sharded multi-engine service:
  deterministic node partitioning, a stateless routing front-end with
  batch-frame splitting and exact metric merging, and a per-shard
  worker supervisor with independent crash recovery
  (``repro serve --shards N``).

See ``docs/SERVICE.md``.
"""

from repro.service.checkpoint import (
    CheckpointError,
    load,
    restore,
    save,
    snapshot,
)
from repro.service.client import CircuitBreaker, RetryPolicy, RetryingClient
from repro.service.clock import VirtualClock, WallClock
from repro.service.engine import (
    AdmissionEngine,
    Decision,
    DuplicateJob,
    EngineConfig,
    EngineError,
    OutOfOrderSubmit,
    engine_for_scenario,
)
from repro.service.faults import (
    CrashPoint,
    DropRequest,
    FaultInjector,
    FaultSpec,
    InjectedError,
)
from repro.service.loadgen import LoadGenerator, LoadReport, ServiceClient
from repro.service.protocol import PROTOCOL_VERSION, ErrorCode, ProtocolError
from repro.service.replay import ReplayReport, replay_jobs, replay_scenario
from repro.service.server import AdmissionService, ServiceServer
from repro.service.sharding import (
    RouterServer,
    ShardRouter,
    ShardSupervisor,
    WorkerSpec,
    merge_scenario_metrics,
    plan_shards,
    shard_for_job,
    shard_for_submit,
    shard_for_user,
    shard_node_counts,
    shard_path,
)
from repro.service.wal import (
    RecoveryReport,
    WalCorruptionError,
    WalError,
    WriteAheadLog,
    read_wal,
    recover,
)

__all__ = [
    "AdmissionEngine",
    "AdmissionService",
    "CheckpointError",
    "CircuitBreaker",
    "CrashPoint",
    "Decision",
    "DropRequest",
    "DuplicateJob",
    "EngineConfig",
    "EngineError",
    "ErrorCode",
    "FaultInjector",
    "FaultSpec",
    "InjectedError",
    "LoadGenerator",
    "LoadReport",
    "OutOfOrderSubmit",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RecoveryReport",
    "ReplayReport",
    "RetryPolicy",
    "RetryingClient",
    "RouterServer",
    "ServiceClient",
    "ServiceServer",
    "ShardRouter",
    "ShardSupervisor",
    "VirtualClock",
    "WalCorruptionError",
    "WalError",
    "WallClock",
    "WorkerSpec",
    "WriteAheadLog",
    "engine_for_scenario",
    "load",
    "merge_scenario_metrics",
    "plan_shards",
    "read_wal",
    "recover",
    "replay_jobs",
    "replay_scenario",
    "restore",
    "save",
    "shard_for_job",
    "shard_for_submit",
    "shard_for_user",
    "shard_node_counts",
    "shard_path",
    "snapshot",
]
