"""The online admission-control engine.

:class:`AdmissionEngine` wraps one policy + cluster + kernel behind an
*incremental* interface — :meth:`~AdmissionEngine.submit` one job at a
time, :meth:`~AdmissionEngine.advance` the clock, and
:meth:`~AdmissionEngine.drain` the remaining work — instead of the
closed batch loop of ``ResourceManagementSystem.submit_all``.  Jobs
arrive in submit-time order (the open-arrival model of the paper's §3
RMS front-end) and every ``submit`` returns a :class:`Decision`
immediately.

Determinism contract
--------------------
Each ``submit`` schedules the same arrival event ``submit_all`` would
and then runs the kernel up to the job's submit time.  Because events
are ordered by ``(time, priority, seq)`` and completions outrank
arrivals at the same instant, the interleaved schedule executes the
**identical event sequence** a batch run of the same workload does —
which is what makes engine replays byte-compatible with batch metric
exports (see ``tests/test_service/test_replay.py``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.analysis.sanitizer import decision_span
from repro.cluster.cluster import Cluster
from repro.cluster.job import Job, JobState
from repro.cluster.rms import ResourceManagementSystem
from repro.cluster.share import ShareParams
from repro.metrics.summary import ScenarioMetrics, compute_metrics
from repro.obs.log import get_logger
from repro.obs.tracing import build_trace, mint_trace_id, seed_from_config
from repro.obs.windows import WindowAggregator
from repro.scheduling.registry import make_policy, policy_discipline
from repro.service.clock import VirtualClock, WallClock
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams

log = get_logger("service.engine")


class EngineError(RuntimeError):
    """Raised for engine misuse (bad job state, time moving backwards)."""


class OutOfOrderSubmit(EngineError):
    """A job arrived with a submit time before the engine's clock.

    Open arrivals must be monotone: the engine has already simulated up
    to its clock, so an earlier arrival cannot be honoured (admitting it
    retroactively would corrupt the event heap's causality).
    """


class DuplicateJob(EngineError):
    """A job arrived whose id is already known to the engine.

    Job ids are the protocol's handle for queries and checkpoints, so a
    second job under the same id is refused before it can reach the
    policy (where a colliding arrival would corrupt node task tables).
    """


@dataclass(frozen=True)
class EngineConfig:
    """Static configuration of one engine: policy × cluster geometry.

    A deliberately smaller sibling of
    :class:`~repro.experiments.config.ScenarioConfig`: the engine hosts
    no workload model — jobs come from outside — so only the knobs that
    shape the serving state live here.
    """

    policy: str = "librarisk"
    policy_kwargs: dict[str, Any] = field(default_factory=dict)
    num_nodes: int = 128
    rating: float = 168.0
    overrun_floor_share: float = 0.05
    redistribute_spare: bool = False
    start_time: float = 0.0
    shard_id: int = 0
    shard_count: int = 1

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.rating <= 0:
            raise ValueError("rating must be > 0")
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if not 0 <= self.shard_id < self.shard_count:
            raise ValueError("shard_id must be in [0, shard_count)")

    def share_params(self) -> ShareParams:
        return ShareParams(
            overrun_floor_share=self.overrun_floor_share,
            redistribute_spare=self.redistribute_spare,
        )

    @classmethod
    def from_scenario(cls, scenario: Any) -> "EngineConfig":
        """Project a ``ScenarioConfig`` onto the engine's knobs."""
        return cls(
            policy=scenario.policy,
            policy_kwargs=dict(scenario.policy_kwargs),
            num_nodes=scenario.num_nodes,
            rating=scenario.rating,
            overrun_floor_share=scenario.overrun_floor_share,
            redistribute_spare=scenario.redistribute_spare,
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form (checkpoint header).

        The shard identity is omitted while at the unsharded defaults so
        that configs written before sharding existed hash to the same
        trace seed and still match WAL/checkpoint headers byte-for-byte.
        A shard of a partitioned cluster always carries both fields,
        which is what gives each shard a distinct trace-id seed.
        """
        data = dataclasses.asdict(self)
        if self.shard_count == 1 and self.shard_id == 0:
            del data["shard_id"]
            del data["shard_count"]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EngineConfig":
        return cls(**data)


@dataclass(frozen=True)
class Decision:
    """The engine's immediate answer to one submitted job.

    ``outcome`` is the job's admission-time disposition:

    * ``"accepted"`` — running (Libra family starts accepted jobs at
      their allocated shares immediately);
    * ``"queued"`` — admitted to a wait queue (EDF defers its real
      admission test to dispatch time, so a queued job may still be
      rejected later; :meth:`AdmissionEngine.query` shows the final
      state);
    * ``"rejected"`` — refused at admission, with the policy's reason.
    """

    job_id: int
    outcome: str
    t: float
    policy: str
    reason: str = ""

    @property
    def accepted(self) -> bool:
        """True unless the job was rejected outright at admission."""
        return self.outcome != "rejected"

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "job": self.job_id,
            "outcome": self.outcome,
            "t": self.t,
            "policy": self.policy,
        }
        if self.reason:
            out["reason"] = self.reason
        return out


class AdmissionEngine:
    """A long-running, incrementally-driven admission-control service.

    Parameters
    ----------
    config:
        Cluster geometry and policy selection.
    clock:
        A :class:`~repro.service.clock.VirtualClock` (default) or
        :class:`~repro.service.clock.WallClock`.  Live engines call
        :meth:`poll` (the server does this per request) so completions
        keep pace with real time.
    obs:
        Optional :class:`~repro.obs.session.ObsSession`; when given it
        is attached to the kernel/RMS/policy exactly as the batch
        runner attaches one, so decision/transition records and the
        metrics registry behave identically.
    streams:
        Optional named RNG streams owned by this engine (live synthetic
        workloads); checkpointed and restored with the rest of the
        state so a resumed engine continues the same random sequences.
    telemetry:
        When false, skips trace-id minting and windowed telemetry
        entirely — the arm ``repro bench --obs`` uses to price the
        instrumentation.  Recovery paths always run with telemetry on
        so recovered trace state matches the uncrashed run.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        clock: Optional[Any] = None,
        obs: Optional[Any] = None,
        streams: Optional[RngStreams] = None,
        telemetry: bool = True,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self.clock = clock if clock is not None else VirtualClock(self.config.start_time)
        self.sim = Simulator(start_time=self.config.start_time)
        self.cluster = Cluster.homogeneous(
            self.sim,
            self.config.num_nodes,
            rating=self.config.rating,
            discipline=policy_discipline(self.config.policy),
            share_params=self.config.share_params(),
        )
        self.policy = make_policy(self.config.policy, **self.config.policy_kwargs)
        self.rms = ResourceManagementSystem(self.sim, self.cluster, self.policy)
        self.obs = obs
        self.streams = streams
        self.decisions: list[Decision] = []
        self._decision_index: dict[int, Decision] = {}
        self._known_ids: set[int] = set()
        #: LSN of the last write-ahead-log record applied to this engine
        #: (0 = no WAL).  Maintained by the service layer; checkpointed so
        #: recovery can skip the already-materialised log prefix.
        self.wal_lsn: int = 0
        self.telemetry = bool(telemetry)
        #: Seed of the deterministic trace-id stream: a pure function of
        #: the config, so differently configured engines never collide
        #: and identically configured runs mint identical ids.
        self.trace_seed: int = seed_from_config(self.config.as_dict())
        #: Logical submit counter — the deterministic stand-in for the
        #: wall-clock tick of conventional tracers.  Advances only on
        #: submits that reach the kernel, so failed submits (which fail
        #: identically on replay/recovery) never skew the stream.
        self._submit_seq: int = 0
        #: job id -> minted trace id, for every traced submission.
        self.trace_ids: dict[int, str] = {}
        #: job id -> WAL LSN of its submit frame (service layer fills
        #: this in; recovery refills it from the log itself).
        self.wal_lsns: dict[int, int] = {}
        #: Windowed constant-memory telemetry (None when telemetry off).
        self.window: Optional[WindowAggregator] = (
            WindowAggregator() if telemetry else None
        )
        if obs is not None:
            obs.attach(self.sim, self.rms, self.policy)

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """The engine's simulated clock (seconds)."""
        return self.sim.now

    def poll(self) -> int:
        """Chase a live clock: advance the kernel to ``clock.now()``.

        No-op under a virtual clock.  Returns events fired.
        """
        if not getattr(self.clock, "live", False):
            return 0
        target = self.clock.now()
        if target <= self.sim.now:
            return 0
        return self.advance(target)

    # -- the online API ----------------------------------------------------
    def submit(
        self,
        job: Job,
        clamp_past: bool = False,
        trace: Optional[str] = None,
    ) -> Decision:
        """Admit one arriving job; returns the policy's decision.

        The kernel first executes every event up to the job's submit
        time (completions free capacity the admission test must see),
        then the arrival fires and the policy decides.

        ``clamp_past`` moves a stale submit time forward to the current
        clock instead of raising — live servers use it because network
        delay routinely lands requests a few (simulated) seconds late.

        ``trace`` pins the trace id for this submission (the service
        layer passes the id it already logged to the WAL, so recovery
        reuses the original id instead of minting a new one).  When
        omitted, the engine mints ``mint_trace_id(trace_seed,
        submit_seq, job_id)`` — deterministic, so a replayed workload
        regenerates identical ids.

        Raises
        ------
        OutOfOrderSubmit
            If ``job.submit_time`` is before the engine clock and
            ``clamp_past`` is false.
        DuplicateJob
            If a job with the same id was already submitted.
        EngineError
            If the job was already submitted to some RMS.
        """
        if job.state is not JobState.CREATED:
            raise EngineError(
                f"job {job.job_id} already {job.state.value}; cannot submit"
            )
        if job.job_id in self._known_ids:
            raise DuplicateJob(
                f"a job with id {job.job_id} was already submitted; "
                f"ids are the service's job handle and must be unique"
            )
        if job.submit_time < self.sim.now:
            if clamp_past:
                job.submit_time = self.sim.now
            else:
                raise OutOfOrderSubmit(
                    f"job {job.job_id} arrives out of order: submit_time "
                    f"{job.submit_time:.6g}s is before the engine clock at "
                    f"{self.sim.now:.6g}s"
                )
        self.rms.submit(job)
        self._known_ids.add(job.job_id)
        self._submit_seq += 1
        trace_id: Optional[str] = trace
        if trace_id is None and self.telemetry:
            trace_id = mint_trace_id(self.trace_seed, self._submit_seq, job.job_id)
        if trace_id is not None:
            self.trace_ids[job.job_id] = trace_id
        # Expose the trace context to the policy for the duration of
        # this submission: the arrival event fires inside sim.run, so
        # admission hooks and observers can correlate their records
        # with the job's trace without the engine injecting anything
        # into decision records (byte parity with batch runs).
        self.policy.trace_context = trace_id
        try:
            # Decision-path span: with REPRO_SANITIZE=1 any wall-clock /
            # entropy read fired by the kernel loop below raises.
            with decision_span():
                self.sim.run(until=job.submit_time)
        finally:
            self.policy.trace_context = None
        self.clock.advance_to(self.sim.now)
        decision = self._decision_of(job)
        self.decisions.append(decision)
        self._decision_index[decision.job_id] = decision
        if self.window is not None:
            self.window.note_decision(
                decision.t, decision.policy, decision.outcome, decision.reason
            )
        return decision

    def advance(self, to_time: float) -> int:
        """Run the kernel up to ``to_time``; returns events fired.

        The clock is left at exactly ``to_time`` even when the last
        event fired earlier, matching ``Simulator.run(until=...)``.
        """
        if to_time < self.sim.now:
            raise EngineError(
                f"cannot advance to t={to_time:.6g}: clock is at {self.sim.now:.6g}"
            )
        before = self.sim.events_fired
        with decision_span():
            self.sim.run(until=to_time)
        self.clock.advance_to(self.sim.now)
        return self.sim.events_fired - before

    def drain(self) -> float:
        """Run every remaining event (open jobs finish); returns the horizon."""
        with decision_span():
            self.sim.run()
        self.clock.advance_to(self.sim.now)
        return self.sim.now

    # -- interrogation ------------------------------------------------------
    def query(self, job_id: int) -> Optional[Job]:
        """The submitted job with ``job_id``, or ``None``."""
        for job in self.rms.jobs:
            if job.job_id == job_id:
                return job
        return None

    def peek_trace_id(self, job_id: int) -> str:
        """The trace id the *next* successful submit of ``job_id`` gets.

        The service layer calls this before appending the submit frame
        to the WAL so the logged record carries the same id the engine
        is about to mint — which is what makes recovered traces
        byte-identical to the uncrashed run.
        """
        return mint_trace_id(self.trace_seed, self._submit_seq + 1, job_id)

    def trace(self, job_id: int) -> dict[str, Any]:
        """The reconstructed lifecycle span tree for ``job_id``.

        Raises ``KeyError`` when the engine never decided the job.
        """
        return build_trace(self, job_id)

    def set_window(self, window: float, buckets: Optional[int] = None) -> None:
        """Resize the telemetry window, replaying recorded decisions.

        Replay keeps a resized window consistent with a restored
        engine: the decision log carries ``(t, policy, outcome,
        reason)`` in submit order, exactly the note stream the live
        window saw.
        """
        kwargs: dict[str, Any] = {}
        if buckets is not None:
            kwargs["buckets"] = buckets
        aggregator = WindowAggregator(window, **kwargs)
        aggregator.replay(self.decisions)
        self.window = aggregator

    def decision_for(self, job_id: int) -> Optional[Decision]:
        """The admission-time decision recorded for ``job_id``, if any.

        This is what makes client retries idempotent: resubmitting a
        job id the engine already decided returns the *original*
        decision rather than re-running (and possibly re-deciding) the
        admission test.
        """
        return self._decision_index.get(job_id)

    def metrics(self) -> ScenarioMetrics:
        """Paper metrics over everything submitted so far."""
        return compute_metrics(self.rms.jobs, self.cluster, self.sim.now)

    def stats(self) -> dict[str, Any]:
        """Live counters for the service ``stats`` endpoint (JSON-able)."""
        rms = self.rms
        out: dict[str, Any] = {
            "t": self.sim.now,
            "policy": self.policy.name,
            "nodes": len(self.cluster),
            "submitted": len(rms.jobs),
            "accepted": len(rms.accepted),
            "rejected": len(rms.rejected),
            "completed": len(rms.completed),
            "failed": len(rms.failed),
            "running": self.policy.running_jobs,
            "queued": len(getattr(self.policy, "queue", ())),
            "events_fired": self.sim.events_fired,
            "pending_events": self.sim.pending,
            "events_tombstoned": self.sim.tombstones_dropped,
        }
        if self.policy.cache_stats:
            # Admission fast-path effectiveness (see docs/PERFORMANCE.md);
            # monotone counters, safe to diff between polls.
            out["cache"] = dict(sorted(self.policy.cache_stats.items()))
        ratio = rms.acceptance_ratio
        if ratio is not None:
            out["acceptance_ratio"] = ratio
        if self.window is not None:
            out["window"] = self.window.snapshot(self.sim.now)
        if self.sim.trace is not None:
            out["trace_events_dropped"] = self.sim.trace.dropped
        return out

    # -- internals ----------------------------------------------------------
    def _decision_of(self, job: Job) -> Decision:
        if job.state is JobState.REJECTED:
            outcome, reason = "rejected", job.reject_reason or ""
        elif job.state is JobState.QUEUED:
            outcome, reason = "queued", ""
        else:
            outcome, reason = "accepted", ""
        return Decision(
            job_id=job.job_id,
            outcome=outcome,
            t=job.submit_time,
            policy=self.policy.name,
            reason=reason,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AdmissionEngine policy={self.policy.name} t={self.sim.now:.6g} "
            f"submitted={len(self.rms.jobs)} running={self.policy.running_jobs}>"
        )


def engine_for_scenario(
    scenario: Any,
    obs: Optional[Any] = None,
    clock: Optional[Any] = None,
    telemetry: bool = True,
) -> AdmissionEngine:
    """An engine whose cluster/policy mirror a batch ``ScenarioConfig``."""
    return AdmissionEngine(
        EngineConfig.from_scenario(scenario), clock=clock, obs=obs,
        telemetry=telemetry,
    )


__all__ = [
    "AdmissionEngine",
    "Decision",
    "EngineConfig",
    "EngineError",
    "OutOfOrderSubmit",
    "VirtualClock",
    "WallClock",
    "engine_for_scenario",
]
