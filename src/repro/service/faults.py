"""Deterministic fault injection for chaos-testing the admission service.

A :class:`FaultInjector` is a seeded source of scripted failures the
server consults at well-defined points:

* :meth:`~FaultInjector.on_request` — called once per incoming request
  (the middleware hook in :class:`~repro.service.server.AdmissionService`).
  Depending on the spec it may raise :class:`DropRequest` (the HTTP
  layer closes the connection without a response — a network-level
  loss), raise :class:`InjectedError` (a typed 5xx), or sleep for the
  configured delay.
* :meth:`~FaultInjector.crash` — called at the WAL crash points
  (``wal.before_append``, ``wal.after_append``, ``wal.after_apply``).
  When the scripted point's hit count is reached the process either
  raises :class:`CrashPoint` (in-process tests catch it and then
  recover from the on-disk state, exactly as if the process had died)
  or hard-exits with ``os._exit(137)`` (subprocess chaos tests — the
  same abrupt death ``kill -9`` produces: no atexit handlers, no
  flushes, no graceful close).

Determinism: every request draws a *fixed* number of uniforms from one
seeded :class:`random.Random` regardless of which faults fire, so the
fault sequence for a given seed is independent of timing and of the
injector's own decisions.

:func:`tear_wal_tail` complements the injectors by physically
truncating a log file mid-record, reproducing what a crash during an
append leaves behind.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.log import get_logger

log = get_logger("service.faults")

#: Crash points the server exposes, in request-processing order, then
#: the three compaction windows (snapshot not yet written / snapshot
#: durable but log untruncated / log truncated).
CRASH_POINTS = (
    "wal.before_append",
    "wal.after_append",
    "wal.after_apply",
    "compact.before_snapshot",
    "compact.after_snapshot",
    "compact.after_truncate",
)


class DropRequest(Exception):
    """The request should vanish: no response, connection closed."""


class InjectedError(Exception):
    """The request should fail with a scripted 5xx (code ``injected``)."""


class CrashPoint(BaseException):
    """The process 'dies' here.

    Deliberately a :class:`BaseException`: the server's catch-all
    ``except Exception`` must *not* convert a scripted crash into a
    polite 500 — the whole point is that nothing downstream of the
    crash point runs (no apply, no ack, no WAL close).
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point}")
        self.point = point


@dataclass(frozen=True)
class FaultSpec:
    """Scripted failure mix; all rates are probabilities in [0, 1].

    ``crash_point``/``crash_at`` script one deterministic crash: the
    ``crash_at``-th arrival at ``crash_point`` dies.  ``crash_mode``
    selects :class:`CrashPoint` (``"raise"``, in-process tests) or
    ``os._exit(137)`` (``"exit"``, subprocess chaos).
    """

    seed: int = 0
    drop_rate: float = 0.0
    error_rate: float = 0.0
    delay_rate: float = 0.0
    delay: float = 0.0
    crash_point: Optional[str] = None
    crash_at: int = 1
    crash_mode: str = "raise"

    def __post_init__(self) -> None:
        for name in ("drop_rate", "error_rate", "delay_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.crash_point is not None and self.crash_point not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {self.crash_point!r}; "
                f"expected one of {CRASH_POINTS}"
            )
        if self.crash_at < 1:
            raise ValueError(f"crash_at must be >= 1, got {self.crash_at}")
        if self.crash_mode not in ("raise", "exit"):
            raise ValueError(f"crash_mode must be 'raise' or 'exit', got {self.crash_mode!r}")

    @classmethod
    def parse(cls, spec: str) -> "FaultSpec":
        """Parse the compact CLI form, e.g.
        ``"drop=0.1,error=0.1,delay=0.05@0.02,seed=7,crash=wal.after_append:3,mode=exit"``.
        """
        kwargs: dict[str, Any] = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ValueError(f"fault spec item {part!r} is not key=value")
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "drop":
                    kwargs["drop_rate"] = float(value)
                elif key == "error":
                    kwargs["error_rate"] = float(value)
                elif key == "delay":
                    rate, _, seconds = value.partition("@")
                    kwargs["delay_rate"] = float(rate)
                    kwargs["delay"] = float(seconds) if seconds else 0.01
                elif key == "seed":
                    kwargs["seed"] = int(value)
                elif key == "crash":
                    point, _, nth = value.partition(":")
                    kwargs["crash_point"] = point
                    if nth:
                        kwargs["crash_at"] = int(nth)
                elif key == "mode":
                    kwargs["crash_mode"] = value
                else:
                    raise ValueError(f"unknown fault spec key {key!r}")
            except ValueError as exc:
                raise ValueError(f"bad fault spec item {part!r}: {exc}") from None
        return cls(**kwargs)


@dataclass
class FaultStats:
    """Deterministic counters of what the injector actually did."""

    requests: int = 0
    dropped: int = 0
    errored: int = 0
    delayed: int = 0
    crash_hits: dict[str, int] = field(default_factory=dict)
    crashed: Optional[str] = None

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "requests": self.requests,
            "dropped": self.dropped,
            "errored": self.errored,
            "delayed": self.delayed,
            "crash_hits": dict(self.crash_hits),
        }
        if self.crashed is not None:
            out["crashed"] = self.crashed
        return out


class FaultInjector:
    """Seeded, scriptable chaos source (see module docstring)."""

    def __init__(self, spec: FaultSpec, sleep: Any = time.sleep) -> None:
        self.spec = spec
        self.stats = FaultStats()
        self._rng = random.Random(spec.seed)
        self._sleep = sleep

    # -- per-request middleware ---------------------------------------------
    def on_request(self) -> None:
        """Maybe drop, fail, or delay the current request.

        Draws exactly three uniforms per call so the decision sequence
        depends only on the seed and the request index.
        """
        self.stats.requests += 1
        u_drop = self._rng.random()
        u_error = self._rng.random()
        u_delay = self._rng.random()
        if self.spec.delay_rate and u_delay < self.spec.delay_rate:
            self.stats.delayed += 1
            if self.spec.delay > 0:
                self._sleep(self.spec.delay)
        if self.spec.drop_rate and u_drop < self.spec.drop_rate:
            self.stats.dropped += 1
            raise DropRequest(f"request {self.stats.requests} dropped")
        if self.spec.error_rate and u_error < self.spec.error_rate:
            self.stats.errored += 1
            raise InjectedError(f"request {self.stats.requests} failed by fault spec")

    # -- crash points -------------------------------------------------------
    def crash(self, point: str) -> None:
        """Die if the scripted crash point's hit count is reached."""
        hits = self.stats.crash_hits.get(point, 0) + 1
        self.stats.crash_hits[point] = hits
        if self.spec.crash_point != point or hits != self.spec.crash_at:
            return
        self.stats.crashed = point
        log.warning("injected crash at %s (hit %d)", point, hits)
        if self.spec.crash_mode == "exit":
            # The closest userspace gets to kill -9: no cleanup of any kind.
            os._exit(137)
        raise CrashPoint(point)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector spec={self.spec} stats={self.stats.as_dict()}>"


def tear_wal_tail(path: str, nbytes: int = 7) -> int:
    """Truncate ``nbytes`` off a file, tearing its final record.

    Returns the new size.  Mirrors what a crash mid-append leaves on
    disk; WAL readers must recover the intact prefix.
    """
    size = os.path.getsize(path)
    if nbytes < 1 or nbytes >= size:
        raise ValueError(f"nbytes must be in [1, {size - 1}], got {nbytes}")
    new_size = size - nbytes
    with open(path, "r+b") as fp:
        fp.truncate(new_size)
    return new_size


__all__ = [
    "CRASH_POINTS",
    "CrashPoint",
    "DropRequest",
    "FaultInjector",
    "FaultSpec",
    "FaultStats",
    "InjectedError",
    "tear_wal_tail",
]
