"""Deterministic trace replay through the online engine.

:func:`replay_scenario` is the online twin of
:func:`repro.experiments.runner.run_scenario`: it builds the *same* job
stream from the *same* scenario seed/trace, but feeds jobs to an
:class:`~repro.service.engine.AdmissionEngine` one at a time instead of
batch-submitting them.  By the engine's determinism contract the kernel
executes the identical event sequence, so the final metrics — and the
observability exports, minus the batch runner's span records — are
byte-compatible with the batch run (pinned by
``tests/test_service/test_replay.py``).

This is the virtual-clock, in-process path.  For driving a *server*
over HTTP at a wall-clock speed-up, see :mod:`repro.service.loadgen`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.cluster.job import Job
from repro.metrics.summary import ScenarioMetrics
from repro.obs.log import get_logger
from repro.service.engine import AdmissionEngine, Decision, engine_for_scenario

log = get_logger("service.replay")


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying one job stream through an engine."""

    #: Jobs submitted.
    submitted: int
    #: Decision counts at admission time, keyed by outcome.
    outcomes: dict[str, int]
    #: Final simulated horizon (seconds).
    horizon: float
    #: Kernel events fired.
    events: int
    #: Wall-clock seconds the replay took.
    elapsed: float
    #: Paper metrics over the full stream.
    metrics: ScenarioMetrics
    #: Every admission decision, in submit order.
    decisions: tuple[Decision, ...] = field(repr=False, default=())

    def as_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "outcomes": dict(self.outcomes),
            "horizon": self.horizon,
            "events": self.events,
            "elapsed": self.elapsed,
            "metrics": self.metrics.as_dict(),
        }

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.outcomes.items()))
        return (
            f"replayed {self.submitted} jobs ({parts}) to t={self.horizon:.6g}s "
            f"in {self.elapsed:.3f}s wall-clock"
        )


def replay_jobs(
    engine: AdmissionEngine,
    jobs: Sequence[Job],
    drain: bool = True,
) -> ReplayReport:
    """Feed ``jobs`` (in submit-time order) through ``engine``.

    Each job is submitted individually — exactly what a stream of RPC
    clients would do — and, when ``drain`` is true, the kernel then runs
    to quiescence so every admitted job finishes.  Jobs must already be
    sorted by submit time; an out-of-order stream raises
    :class:`~repro.service.engine.OutOfOrderSubmit` mid-replay.
    """
    t0 = time.perf_counter()
    outcomes: dict[str, int] = {}
    first = len(engine.decisions)
    for job in jobs:
        decision = engine.submit(job)
        outcomes[decision.outcome] = outcomes.get(decision.outcome, 0) + 1
    if drain:
        engine.drain()
    elapsed = time.perf_counter() - t0
    report = ReplayReport(
        submitted=len(jobs),
        outcomes=outcomes,
        horizon=engine.sim.now,
        events=engine.sim.events_fired,
        elapsed=elapsed,
        metrics=engine.metrics(),
        decisions=tuple(engine.decisions[first:]),
    )
    log.info("%s", report)
    return report


def replay_scenario(
    config: Any,
    obs: Optional[Any] = None,
    jobs: Optional[Sequence[Job]] = None,
) -> tuple[AdmissionEngine, ReplayReport]:
    """Replay a batch scenario's exact job stream through a fresh engine.

    ``config`` is a :class:`~repro.experiments.config.ScenarioConfig`;
    the job stream is built by the very same
    :func:`~repro.experiments.runner.build_scenario_jobs` pipeline the
    batch runner uses (same seed → same jobs), unless a pre-built
    ``jobs`` list is supplied.  When ``obs`` is given it is attached to
    the engine and finalized with the replay's metrics, yielding the
    same decision/transition/metrics/registry records as an observed
    batch run (span records excepted — replay has no batch phases).
    """
    from repro.experiments.runner import build_scenario_jobs

    job_list = list(jobs) if jobs is not None else build_scenario_jobs(config)
    engine = engine_for_scenario(config, obs=obs)
    report = replay_jobs(engine, job_list)
    if obs is not None:
        obs.finalize(metrics=report.metrics, sim=engine.sim)
    return engine, report


__all__ = ["ReplayReport", "replay_jobs", "replay_scenario"]
