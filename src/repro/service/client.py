"""A retrying admission-service client: backoff, jitter, circuit breaker.

:class:`RetryingClient` wraps the plain
:class:`~repro.service.loadgen.ServiceClient` with production client
behaviour:

* **Retries with exponential backoff + jitter** on transport failures
  (connection refused/reset/timeout → status ``0``) and retryable 5xx
  codes (``overloaded``, ``shutting_down``, ``internal``, ``injected``).
  Deliberate 4xx refusals are never retried — resending an invalid or
  conflicting request verbatim cannot succeed.
* **Retry-After awareness** — a server backoff hint (JSON
  ``error.retry_after``, mirrored in the HTTP header) overrides the
  computed delay, so shedding servers control their own recovery.
* **Idempotent submits** — the server answers a retried submit of a
  known job id with the *originally recorded* decision
  (``duplicate: true``), so resending after an ambiguous failure can
  never double-admit.  Submits are therefore only retried when the job
  payload carries an explicit ``id``; without one each send would be a
  new job.
* **Circuit breaker** — after ``failure_threshold`` consecutive
  transport/5xx failures the circuit opens and calls fail fast with a
  synthetic ``unavailable`` response until ``recovery_time`` has
  passed; one half-open probe then decides whether to close it.

Everything time- and randomness-dependent is injectable (``sleep``,
``clock``, ``seed``), so retry schedules are deterministic under test.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs.log import get_logger
from repro.service import protocol
from repro.service.loadgen import ServiceClient
from repro.service.protocol import ErrorCode

log = get_logger("service.client")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule with multiplicative jitter.

    Attempt ``k`` (0-based) sleeps ``base_delay * multiplier**k``
    capped at ``max_delay``, scaled by a uniform factor in
    ``[1 - jitter, 1]`` so synchronized clients fan out instead of
    retrying in lockstep.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retrying after failed attempt ``attempt``."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        return raw * (1.0 - self.jitter * rng.random())


class CircuitBreaker:
    """Classic closed → open → half-open breaker over consecutive failures."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if recovery_time <= 0:
            raise ValueError(f"recovery_time must be > 0, got {recovery_time}")
        self.failure_threshold = int(failure_threshold)
        self.recovery_time = float(recovery_time)
        self._clock = clock
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None

    def allow(self) -> bool:
        """May a request be sent right now?

        An open circuit lets exactly one probe through once
        ``recovery_time`` has elapsed (half-open); its outcome closes
        or re-opens the circuit.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            assert self.opened_at is not None
            if self._clock() - self.opened_at >= self.recovery_time:
                self.state = self.HALF_OPEN
                return True
            return False
        # Half-open: a probe is already in flight; hold everything else.
        return False

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = None

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == self.HALF_OPEN or self.failures >= self.failure_threshold:
            self.state = self.OPEN
            self.opened_at = self._clock()


class RetryingClient(ServiceClient):
    """Drop-in :class:`ServiceClient` with retries and a circuit breaker.

    Parameters
    ----------
    url, timeout:
        As for :class:`ServiceClient`.
    policy:
        The backoff schedule.
    breaker:
        Optional circuit breaker; ``None`` disables fast-fail.
    seed:
        Seeds the jitter RNG (deterministic retry schedules in tests).
    sleep:
        Injection point for the backoff sleep (tests pass a recorder).
    """

    def __init__(
        self,
        url: str,
        timeout: float = 10.0,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__(url, timeout=timeout)
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker = breaker
        self._rng = random.Random(seed)
        self._sleep = sleep
        self.attempts = 0
        self.retries = 0
        self.fast_failures = 0

    # -- retry core ----------------------------------------------------------
    def rpc(
        self, request: dict[str, Any], retryable: Optional[bool] = None
    ) -> tuple[int, dict[str, Any]]:
        """Send with retries; returns the final ``(status, response)``.

        ``retryable=None`` infers safety from the request: everything
        is retryable except a ``submit`` without an explicit job id
        (the server's idempotent dedupe needs the id as its handle).
        """
        if retryable is None:
            retryable = self._is_retryable(request)
        last: tuple[int, dict[str, Any]] = (0, protocol.error_response(
            ErrorCode.UNAVAILABLE, "no attempt was made"
        ))
        attempts = self.policy.max_attempts if retryable else 1
        for attempt in range(attempts):
            if self.breaker is not None and not self.breaker.allow():
                self.fast_failures += 1
                last = (0, protocol.error_response(
                    ErrorCode.UNAVAILABLE,
                    "circuit breaker is open; failing fast",
                ))
                # An open circuit still honours the backoff schedule, so
                # a long outage costs sleeps, not a request storm.
                if attempt + 1 < attempts:
                    self._sleep(self.policy.delay(attempt, self._rng))
                continue
            self.attempts += 1
            status, response = super().rpc(request)
            last = (status, response)
            if not self._failed(status, response):
                if self.breaker is not None:
                    self.breaker.record_success()
                return status, response
            if self.breaker is not None:
                self.breaker.record_failure()
            if attempt + 1 < attempts:
                self.retries += 1
                self._sleep(self._retry_delay(attempt, response))
        return last

    @staticmethod
    def _is_retryable(request: dict[str, Any]) -> bool:
        if request.get("type") == "submit":
            job = request.get("job")
            return isinstance(job, dict) and job.get("id") is not None
        if request.get("type") == "batch":
            # A replayed frame is only safe when *every* item can be
            # deduped by id — one id-less job would be re-admitted as a
            # fresh job on each retry.
            jobs = request.get("jobs")
            return isinstance(jobs, list) and all(
                isinstance(job, dict) and job.get("id") is not None for job in jobs
            )
        return True

    @staticmethod
    def _failed(status: int, response: dict[str, Any]) -> bool:
        """Transport failures and retryable server codes count as failed."""
        if status == 0:
            return True
        code = response.get("error", {}).get("code")
        return code in protocol.RETRYABLE_CODES

    def _retry_delay(self, attempt: int, response: dict[str, Any]) -> float:
        hinted = response.get("error", {}).get("retry_after")
        if isinstance(hinted, (int, float)) and hinted > 0:
            return float(hinted)
        return self.policy.delay(attempt, self._rng)

    @property
    def client_stats(self) -> dict[str, Any]:
        """Deterministic counters for tests and reports."""
        out: dict[str, Any] = {
            "attempts": self.attempts,
            "retries": self.retries,
            "fast_failures": self.fast_failures,
        }
        if self.breaker is not None:
            out["breaker_state"] = self.breaker.state
            out["breaker_failures"] = self.breaker.failures
        return out


__all__ = ["CircuitBreaker", "RetryPolicy", "RetryingClient"]
