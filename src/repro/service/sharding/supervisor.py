"""One worker process per shard, restarted from its own WAL on death.

The supervisor is the piece that turns the shard plan into actual
parallelism: each shard runs as a separate ``repro serve`` **process**
(its own interpreter, so the GIL bounds one shard, not the fleet),
listening on its own port, logging to its own shard-namespaced WAL.

Crash contract
--------------
``kill -9`` one worker and:

* the monitor thread notices within ``poll_interval`` and respawns the
  identical command line;
* the respawned ``repro serve --wal <shard wal>`` recovers that shard's
  engine from its checkpoint + WAL exactly as an unsharded server would
  (the recovery path is shared, not reimplemented);
* every other shard keeps serving throughout — the router keeps
  routing to them and reports the fleet as ``degraded``, not down.

Restarts are capped per shard (``max_restarts``) so a crash-looping
worker degrades into an honest ``down`` shard instead of a fork bomb.
"""

from __future__ import annotations

import socket
import subprocess
import threading
from dataclasses import dataclass, field
from time import monotonic, sleep
from typing import IO, Any, Optional, Union

from repro.obs.log import get_logger
from repro.service.loadgen import ServiceClient

log = get_logger("service.sharding.supervisor")


def free_ports(count: int) -> list[int]:
    """Reserve ``count`` distinct free TCP ports (best effort).

    The sockets are bound, recorded, then closed — a race with other
    port grabbers is possible but fine for tests and benchmarks; real
    deployments pass explicit ``--port`` ranges.
    """
    sockets = []
    ports = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


@dataclass
class WorkerSpec:
    """Everything needed to (re)spawn one shard worker."""

    shard_id: int
    cmd: list[str]
    url: str
    env: Optional[dict[str, str]] = None


@dataclass
class WorkerState:
    """Mutable supervision record of one shard worker."""

    spec: WorkerSpec
    proc: Optional[subprocess.Popen] = None  # type: ignore[type-arg]
    restarts: int = 0
    failed: bool = False
    history: list[int] = field(default_factory=list)  # pids, oldest first


class ShardSupervisor:
    """Spawn, watch, restart, and stop the per-shard worker processes."""

    def __init__(
        self,
        specs: list[WorkerSpec],
        max_restarts: int = 5,
        poll_interval: float = 0.2,
        stdout: Union[int, IO[bytes], None] = None,
        stderr: Union[int, IO[bytes], None] = None,
    ) -> None:
        if not specs:
            raise ValueError("need at least one worker spec")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        self.specs = specs
        self.max_restarts = int(max_restarts)
        self.poll_interval = float(poll_interval)
        self._stdout = stdout
        self._stderr = stderr
        self.workers = [WorkerState(spec=spec) for spec in specs]
        self._lock = threading.Lock()
        self._stopping = False
        self._monitor: Optional[threading.Thread] = None
        #: Optional router whose ``shard_pids`` mirror is kept current.
        self.router: Optional[Any] = None

    # -- spawning -----------------------------------------------------------
    def _spawn(self, state: WorkerState) -> None:
        proc = subprocess.Popen(
            state.spec.cmd,
            env=state.spec.env,
            stdout=self._stdout,
            stderr=self._stderr,
        )
        state.proc = proc
        state.history.append(proc.pid)
        if self.router is not None:
            self.router.shard_pids[state.spec.shard_id] = proc.pid
        log.info("shard %d worker pid %d: %s",
                 state.spec.shard_id, proc.pid, " ".join(state.spec.cmd))

    def start(self, wait_healthy: bool = True, timeout: float = 30.0) -> None:
        """Spawn every worker; optionally block until all answer /healthz."""
        with self._lock:
            for state in self.workers:
                self._spawn(state)
        self._monitor = threading.Thread(
            target=self._watch, name="repro-shard-supervisor", daemon=True
        )
        self._monitor.start()
        if wait_healthy:
            self.wait_healthy(timeout=timeout)

    def wait_healthy(self, timeout: float = 30.0) -> None:
        """Block until every live worker answers ``GET /healthz`` with 200."""
        deadline = monotonic() + timeout
        for state in self.workers:
            client = ServiceClient(state.spec.url, timeout=1.0)
            while True:
                if state.failed:
                    raise RuntimeError(
                        f"shard {state.spec.shard_id} worker failed permanently "
                        f"while waiting for health"
                    )
                proc = state.proc
                if proc is not None and proc.poll() is not None and self._stopping:
                    raise RuntimeError("supervisor stopped during wait_healthy")
                if client.healthy():
                    break
                if monotonic() > deadline:
                    raise TimeoutError(
                        f"shard {state.spec.shard_id} worker at "
                        f"{state.spec.url} not healthy after {timeout:g}s"
                    )
                sleep(0.05)

    # -- monitoring ---------------------------------------------------------
    def _watch(self) -> None:
        while not self._stopping:
            with self._lock:
                for state in self.workers:
                    proc = state.proc
                    if (
                        self._stopping or proc is None or state.failed
                        or proc.poll() is None
                    ):
                        continue
                    code = proc.returncode
                    if state.restarts >= self.max_restarts:
                        state.failed = True
                        log.error(
                            "shard %d worker died (exit %s) and exhausted "
                            "%d restarts; marking it down",
                            state.spec.shard_id, code, self.max_restarts,
                        )
                        continue
                    state.restarts += 1
                    log.warning(
                        "shard %d worker died (exit %s); restart %d/%d",
                        state.spec.shard_id, code,
                        state.restarts, self.max_restarts,
                    )
                    self._spawn(state)
            sleep(self.poll_interval)

    # -- introspection ------------------------------------------------------
    def pids(self) -> dict[int, int]:
        """Live pid per shard id (absent while a shard is down)."""
        out: dict[int, int] = {}
        with self._lock:
            for state in self.workers:
                proc = state.proc
                if proc is not None and proc.poll() is None:
                    out[state.spec.shard_id] = proc.pid
        return out

    def restart_counts(self) -> dict[int, int]:
        with self._lock:
            return {s.spec.shard_id: s.restarts for s in self.workers}

    def all_alive(self) -> bool:
        with self._lock:
            return all(
                s.proc is not None and s.proc.poll() is None
                for s in self.workers
            )

    # -- shutdown -----------------------------------------------------------
    def stop(self, timeout: float = 10.0) -> None:
        """Terminate every worker (SIGTERM, then SIGKILL stragglers)."""
        self._stopping = True
        if self._monitor is not None:
            self._monitor.join(timeout=max(1.0, 2 * self.poll_interval))
        with self._lock:
            for state in self.workers:
                proc = state.proc
                if proc is not None and proc.poll() is None:
                    proc.terminate()
            deadline = monotonic() + timeout
            for state in self.workers:
                proc = state.proc
                if proc is None:
                    continue
                try:
                    proc.wait(timeout=max(0.1, deadline - monotonic()))
                except subprocess.TimeoutExpired:
                    log.error(
                        "shard %d worker pid %d ignored SIGTERM; killing",
                        state.spec.shard_id, proc.pid,
                    )
                    proc.kill()
                    proc.wait(timeout=5.0)

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


__all__ = ["ShardSupervisor", "WorkerSpec", "WorkerState", "free_ports"]
