"""One worker process per shard, restarted from its own WAL on death.

The supervisor is the piece that turns the shard plan into actual
parallelism: each shard runs as a separate ``repro serve`` **process**
(its own interpreter, so the GIL bounds one shard, not the fleet),
listening on its own port, logging to its own shard-namespaced WAL.

Crash contract
--------------
``kill -9`` one worker and:

* the monitor thread notices within ``poll_interval`` and respawns the
  identical command line;
* the respawned ``repro serve --wal <shard wal>`` recovers that shard's
  engine from its checkpoint + WAL exactly as an unsharded server would
  (the recovery path is shared, not reimplemented);
* every other shard keeps serving throughout — the router keeps
  routing to them and reports the fleet as ``degraded``, not down.

Restart policy
--------------
Respawns are **backed off exponentially** (``backoff_base *
backoff_factor**consecutive``, capped at ``backoff_max``) with a small
deterministic jitter derived from ``crc32(shard_id:restart_no)`` — no
entropy, so two runs of the same crash schedule respawn on the same
timeline.  Restarts draw from a per-shard **budget** of
``max_restarts`` credits that *refills with healthy uptime* (one
credit per ``restart_refill`` seconds alive): a worker that flaps once
an hour lives forever, while a crash-looping worker exhausts the
budget just like the old lifetime cap and degrades into an honest
``down`` shard instead of a fork bomb.  A worker that stays up at
least ``stable_uptime`` seconds also resets the backoff ladder.
"""

from __future__ import annotations

import socket
import subprocess
import threading
import zlib
from dataclasses import dataclass, field
from time import monotonic, sleep
from typing import IO, Any, Optional, Union

from repro.obs.log import get_logger
from repro.service.loadgen import ServiceClient

log = get_logger("service.sharding.supervisor")


def free_ports(count: int) -> list[int]:
    """Reserve ``count`` distinct free TCP ports (best effort).

    The sockets are bound, recorded, then closed — a race with other
    port grabbers is possible but fine for tests and benchmarks; real
    deployments pass explicit ``--port`` ranges.
    """
    sockets = []
    ports = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


@dataclass
class WorkerSpec:
    """Everything needed to (re)spawn one shard worker."""

    shard_id: int
    cmd: list[str]
    url: str
    env: Optional[dict[str, str]] = None


@dataclass
class WorkerState:
    """Mutable supervision record of one shard worker."""

    spec: WorkerSpec
    proc: Optional[subprocess.Popen] = None  # type: ignore[type-arg]
    restarts: int = 0  # lifetime total, monotone
    failed: bool = False
    history: list[int] = field(default_factory=list)  # pids, oldest first
    #: Restart credits spent minus healthy-uptime refills; the worker is
    #: marked ``failed`` when charging one more would exceed the budget.
    budget_used: float = 0.0
    #: Consecutive deaths without a stable run — the backoff exponent.
    consecutive: int = 0
    #: monotonic() of the last spawn / last refill accrual tick.
    spawned_at: float = 0.0
    refilled_at: float = 0.0
    #: When nonzero, a respawn is scheduled for this monotonic time.
    respawn_at: float = 0.0


def _restart_jitter(shard_id: int, restart_no: int, scale: float) -> float:
    """Deterministic jitter in ``[0, scale)`` — crc32, never ``random``."""
    token = f"{shard_id}:{restart_no}".encode("ascii")
    return scale * (zlib.crc32(token) % 1000) / 1000.0


class ShardSupervisor:
    """Spawn, watch, restart, and stop the per-shard worker processes."""

    def __init__(
        self,
        specs: list[WorkerSpec],
        max_restarts: int = 5,
        poll_interval: float = 0.2,
        stdout: Union[int, IO[bytes], None] = None,
        stderr: Union[int, IO[bytes], None] = None,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max: float = 5.0,
        restart_refill: float = 30.0,
        stable_uptime: float = 5.0,
    ) -> None:
        if not specs:
            raise ValueError("need at least one worker spec")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if backoff_base <= 0 or backoff_factor < 1.0 or backoff_max <= 0:
            raise ValueError("backoff parameters must be positive")
        if restart_refill <= 0 or stable_uptime <= 0:
            raise ValueError("restart_refill and stable_uptime must be > 0")
        self.specs = specs
        self.max_restarts = int(max_restarts)
        self.poll_interval = float(poll_interval)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_max = float(backoff_max)
        self.restart_refill = float(restart_refill)
        self.stable_uptime = float(stable_uptime)
        self._stdout = stdout
        self._stderr = stderr
        self.workers = [WorkerState(spec=spec) for spec in specs]
        self._lock = threading.Lock()
        self._stopping = False
        self._monitor: Optional[threading.Thread] = None
        #: Optional router whose ``shard_pids`` mirror is kept current.
        self.router: Optional[Any] = None

    # -- spawning -----------------------------------------------------------
    def _spawn(self, state: WorkerState) -> None:
        proc = subprocess.Popen(
            state.spec.cmd,
            env=state.spec.env,
            stdout=self._stdout,
            stderr=self._stderr,
        )
        state.proc = proc
        state.history.append(proc.pid)
        state.spawned_at = monotonic()
        state.refilled_at = state.spawned_at
        state.respawn_at = 0.0
        if self.router is not None:
            self.router.shard_pids[state.spec.shard_id] = proc.pid
        log.info("shard %d worker pid %d: %s",
                 state.spec.shard_id, proc.pid, " ".join(state.spec.cmd))

    def start(self, wait_healthy: bool = True, timeout: float = 30.0) -> None:
        """Spawn every worker; optionally block until all answer /healthz."""
        with self._lock:
            for state in self.workers:
                self._spawn(state)
        self._monitor = threading.Thread(
            target=self._watch, name="repro-shard-supervisor", daemon=True
        )
        self._monitor.start()
        if wait_healthy:
            self.wait_healthy(timeout=timeout)

    def wait_healthy(self, timeout: float = 30.0) -> None:
        """Block until every live worker answers ``GET /healthz`` with 200."""
        deadline = monotonic() + timeout
        for state in self.workers:
            client = ServiceClient(state.spec.url, timeout=1.0)
            while True:
                if state.failed:
                    raise RuntimeError(
                        f"shard {state.spec.shard_id} worker failed permanently "
                        f"while waiting for health"
                    )
                proc = state.proc
                if proc is not None and proc.poll() is not None and self._stopping:
                    raise RuntimeError("supervisor stopped during wait_healthy")
                if client.healthy():
                    break
                if monotonic() > deadline:
                    raise TimeoutError(
                        f"shard {state.spec.shard_id} worker at "
                        f"{state.spec.url} not healthy after {timeout:g}s"
                    )
                sleep(0.05)

    # -- monitoring ---------------------------------------------------------
    def _watch(self) -> None:
        while not self._stopping:
            now = monotonic()
            with self._lock:
                for state in self.workers:
                    if self._stopping or state.failed:
                        continue
                    self._tick_worker(state, now)
            sleep(self.poll_interval)

    def _tick_worker(self, state: WorkerState, now: float) -> None:
        """One supervision step for one worker (caller holds the lock)."""
        if state.respawn_at:
            if now >= state.respawn_at:
                state.restarts += 1
                log.warning(
                    "shard %d respawn %d (budget %.2f/%d used)",
                    state.spec.shard_id, state.restarts,
                    state.budget_used, self.max_restarts,
                )
                self._spawn(state)
            return
        proc = state.proc
        if proc is None:
            return
        if proc.poll() is None:
            # Alive: healthy uptime refills the restart budget and, once
            # the run counts as stable, resets the backoff ladder.
            if state.budget_used > 0.0:
                state.budget_used = max(
                    0.0,
                    state.budget_used
                    - (now - state.refilled_at) / self.restart_refill,
                )
            state.refilled_at = now
            if state.consecutive and now - state.spawned_at >= self.stable_uptime:
                state.consecutive = 0
            return
        # Dead: charge the budget, then either fail permanently or
        # schedule a backed-off respawn.
        code = proc.returncode
        if state.budget_used + 1.0 > self.max_restarts + 1e-9:
            state.failed = True
            log.error(
                "shard %d worker died (exit %s) with restart budget "
                "exhausted (%d credits); marking it down",
                state.spec.shard_id, code, self.max_restarts,
            )
            return
        state.budget_used += 1.0
        state.consecutive += 1
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (state.consecutive - 1),
        ) + _restart_jitter(
            state.spec.shard_id, state.restarts + 1, self.backoff_base
        )
        state.respawn_at = now + delay
        log.warning(
            "shard %d worker died (exit %s); respawn in %.3fs "
            "(attempt %d, budget %.2f/%d used)",
            state.spec.shard_id, code, delay,
            state.consecutive, state.budget_used, self.max_restarts,
        )

    # -- introspection ------------------------------------------------------
    def pids(self) -> dict[int, int]:
        """Live pid per shard id (absent while a shard is down)."""
        out: dict[int, int] = {}
        with self._lock:
            for state in self.workers:
                proc = state.proc
                if proc is not None and proc.poll() is None:
                    out[state.spec.shard_id] = proc.pid
        return out

    def restart_counts(self) -> dict[int, int]:
        with self._lock:
            return {s.spec.shard_id: s.restarts for s in self.workers}

    def supervision_snapshot(self) -> dict[int, dict[str, Any]]:
        """Per-shard restart-policy view (for /healthz and the console)."""
        now = monotonic()
        out: dict[int, dict[str, Any]] = {}
        with self._lock:
            for state in self.workers:
                proc = state.proc
                entry: dict[str, Any] = {
                    "alive": proc is not None and proc.poll() is None,
                    "failed": state.failed,
                    "restarts": state.restarts,
                    "budget_used": round(state.budget_used, 4),
                    "budget": self.max_restarts,
                }
                if state.respawn_at:
                    entry["respawn_in"] = round(
                        max(0.0, state.respawn_at - now), 4
                    )
                out[state.spec.shard_id] = entry
        return out

    def all_alive(self) -> bool:
        with self._lock:
            return all(
                s.proc is not None and s.proc.poll() is None
                for s in self.workers
            )

    # -- shutdown -----------------------------------------------------------
    def stop(self, timeout: float = 10.0) -> None:
        """Terminate every worker (SIGTERM, then SIGKILL stragglers)."""
        self._stopping = True
        if self._monitor is not None:
            self._monitor.join(timeout=max(1.0, 2 * self.poll_interval))
        with self._lock:
            for state in self.workers:
                proc = state.proc
                if proc is not None and proc.poll() is None:
                    proc.terminate()
            deadline = monotonic() + timeout
            for state in self.workers:
                proc = state.proc
                if proc is None:
                    continue
                try:
                    proc.wait(timeout=max(0.1, deadline - monotonic()))
                except subprocess.TimeoutExpired:
                    log.error(
                        "shard %d worker pid %d ignored SIGTERM; killing",
                        state.spec.shard_id, proc.pid,
                    )
                    proc.kill()
                    proc.wait(timeout=5.0)

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


__all__ = ["ShardSupervisor", "WorkerSpec", "WorkerState", "free_ports"]
