"""Deterministic cluster partitioning for the sharded admission service.

A shard plan splits one logical cluster of ``num_nodes`` nodes into
``num_shards`` disjoint sub-clusters, each served by its own
:class:`~repro.service.engine.AdmissionEngine`.  Two properties make the
split safe to rely on across restarts and across processes:

* **Node counts are a pure function of (num_nodes, num_shards)** — shard
  ``i`` owns ``num_nodes // num_shards`` nodes plus one extra when
  ``i < num_nodes % num_shards``.  The counts always sum to
  ``num_nodes`` and never differ by more than one.
* **Routing is a pure function of the job identity** — a job id (or,
  for id-less submits, the submitting user) hashes to the same shard on
  every router, in every process, on every run.  The hash is crc32 over
  a tagged ASCII encoding, so it is stable across Python versions and
  does not depend on ``PYTHONHASHSEED``.

Each shard's :class:`~repro.service.engine.EngineConfig` carries its
``(shard_id, shard_count)`` identity, which flows into the trace-id seed
(`seed_from_config`) so two shards never mint colliding trace ids.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.service.engine import EngineConfig

__all__ = [
    "shard_node_counts",
    "plan_shards",
    "shard_for_job",
    "shard_for_user",
    "shard_for_submit",
]


def shard_node_counts(num_nodes: int, num_shards: int) -> tuple[int, ...]:
    """Split ``num_nodes`` into ``num_shards`` near-equal positive counts."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_nodes < num_shards:
        raise ValueError(
            f"cannot split {num_nodes} nodes into {num_shards} shards: "
            "every shard needs at least one node"
        )
    base, extra = divmod(num_nodes, num_shards)
    return tuple(base + (1 if i < extra else 0) for i in range(num_shards))


def plan_shards(config: EngineConfig, num_shards: int) -> tuple[EngineConfig, ...]:
    """Derive one per-shard :class:`EngineConfig` from an unsharded config.

    The input config must itself be unsharded (``shard_count == 1``);
    splitting an already-split shard would silently nest partitions.
    """
    if config.shard_count != 1:
        raise ValueError("plan_shards requires an unsharded base config")
    counts = shard_node_counts(config.num_nodes, num_shards)
    if num_shards == 1:
        # A single shard *is* the unsharded engine: identical config,
        # identical trace seed, byte-identical decisions.
        return (config,)
    return tuple(
        EngineConfig(
            policy=config.policy,
            policy_kwargs=dict(config.policy_kwargs),
            num_nodes=counts[i],
            rating=config.rating,
            overrun_floor_share=config.overrun_floor_share,
            redistribute_spare=config.redistribute_spare,
            start_time=config.start_time,
            shard_id=i,
            shard_count=num_shards,
        )
        for i in range(num_shards)
    )


def shard_for_job(job_id: int, num_shards: int) -> int:
    """Stable shard index for a job id (crc32 of ``job:<id>``)."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return zlib.crc32(b"job:%d" % job_id) % num_shards


def shard_for_user(user: str, num_shards: int) -> int:
    """Stable shard index for a user name (crc32 of ``user:<name>``)."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return zlib.crc32(b"user:" + user.encode("utf-8")) % num_shards


def shard_for_submit(job_id: Optional[int], user: Optional[str], num_shards: int) -> int:
    """Routing key for one submit: job id first, then user, then shard 0.

    Submits without an explicit job id cannot be routed by id (the id is
    assigned *inside* a shard), so they pin to the user's shard; a
    submit with neither lands on shard 0.  Both fallbacks are documented
    in ``docs/SERVICE.md`` — deterministic routing is what makes retried
    submits hit the same decision log that answered them the first time.
    """
    if job_id is not None:
        return shard_for_job(job_id, num_shards)
    if user is not None:
        return shard_for_user(user, num_shards)
    return 0
