"""The sharded admission service's routing front-end.

One :class:`ShardRouter` sits in front of N shard workers (each an
ordinary ``repro serve`` process over its slice of the cluster, see
:mod:`repro.service.sharding.partition`) and presents the *same* HTTP
surface a single server does — ``POST /v1/rpc``, ``GET /healthz``,
``GET /v1/stats``, ``GET /metrics`` — so clients, the load generator,
and ``repro top`` work unchanged against a sharded deployment.

Routing rules
-------------
* ``submit`` / ``query`` / ``trace`` forward the **raw request body**
  to the one shard owning the job (stable job-id/user hash) — the shard
  worker's response passes through byte-identical, which is what keeps
  duplicate-submit idempotency working: a retry hashes to the same
  shard and is answered from its decision log.  With exactly one shard
  *every* RPC passes through raw, so a 1-shard router is byte-identical
  on the wire to an unsharded server.
* ``batch`` frames are split into per-shard sub-frames (preserving the
  submit-time order within each shard) and forwarded **concurrently**;
  per-item envelopes are merged back into the original positions.
* ``stats`` / ``advance`` / ``drain`` fan out to every shard and merge;
  ``checkpoint`` requires a ``path`` and fans out with shard-namespaced
  filenames.

Degraded mode
-------------
Every shard gets a :class:`~repro.service.sharding.breaker.ShardBreaker`
(closed/open/half-open, driven by consecutive forward failures and
``/healthz`` probes) so a dead shard fails fast instead of eating a
connect timeout per request, plus bounded forward retries with
deterministic backoff that honors a shard's ``Retry-After`` hint.
With ``max_parked > 0`` the router also **parks** submits owned by a
down shard in arrival order and flushes them in order on recovery —
see :mod:`repro.service.sharding.parking` — so a shard kill leaves no
client-visible submit loss and the recovered fleet's WALs and metrics
are byte-identical to an un-killed run.

The router remains stateless about *admission*: no engine, no WAL.
Parked bodies are an in-flight buffer, not durable state — a router
crash loses only requests that were never acked as applied, exactly
like requests lost on the wire.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from time import perf_counter
from typing import Any, Callable, Optional

from repro.obs.console import parse_prometheus
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.service import protocol
from repro.service.engine import EngineConfig
from repro.service.protocol import ErrorCode, ProtocolError
from repro.service.sharding.breaker import CLOSED, HALF_OPEN, OPEN, ShardBreaker
from repro.service.sharding.parking import ParkingLot
from repro.service.sharding.partition import plan_shards, shard_for_submit
from repro.service.sharding.paths import shard_path

log = get_logger("service.sharding.router")

#: Metric keys of a drained ``ScenarioMetrics`` dict that merge by sum.
_SUM_KEYS = (
    "total_submitted", "accepted", "rejected", "completed", "unfinished",
    "failed", "deadlines_fulfilled", "completed_late",
    "high_submitted", "high_fulfilled", "low_submitted", "low_fulfilled",
)


def merge_scenario_metrics(
    per_shard: list[dict[str, Any]], node_counts: list[int]
) -> dict[str, Any]:
    """Combine per-shard drained metrics into cluster-wide metrics.

    Counts sum; ratios are recomputed from the summed numerators and
    denominators (exact — this is why ``ScenarioMetrics.as_dict`` carries
    the raw per-class counts); the per-job means (``avg_slowdown``,
    ``avg_delay_of_late_jobs``) are job-count-weighted means, and
    ``utilisation`` is node-count-weighted.  A single shard passes
    through untouched, so a 1-shard merge is byte-identical to the
    unsharded metrics dict.
    """
    if len(per_shard) != len(node_counts):
        raise ValueError("per_shard and node_counts must be parallel")
    if not per_shard:
        raise ValueError("cannot merge zero shards")
    if len(per_shard) == 1:
        return dict(per_shard[0])
    merged: dict[str, Any] = {}
    for key in _SUM_KEYS:
        merged[key] = sum(m[key] for m in per_shard)
    total = merged["total_submitted"]
    fulfilled = merged["deadlines_fulfilled"]
    late = merged["completed_late"]
    merged["pct_deadlines_fulfilled"] = 100.0 * fulfilled / total if total else 0.0
    merged["acceptance_pct"] = 100.0 * merged["accepted"] / total if total else 0.0
    merged["avg_slowdown"] = (
        sum(m["avg_slowdown"] * m["deadlines_fulfilled"] for m in per_shard) / fulfilled
        if fulfilled else 0.0
    )
    merged["avg_delay_of_late_jobs"] = (
        sum(m["avg_delay_of_late_jobs"] * m["completed_late"] for m in per_shard) / late
        if late else 0.0
    )
    nodes = sum(node_counts)
    merged["utilisation"] = (
        sum(m["utilisation"] * n for m, n in zip(per_shard, node_counts)) / nodes
        if nodes else 0.0
    )
    merged["high_pct_fulfilled"] = (
        100.0 * merged["high_fulfilled"] / merged["high_submitted"]
        if merged["high_submitted"] else 0.0
    )
    merged["low_pct_fulfilled"] = (
        100.0 * merged["low_fulfilled"] / merged["low_submitted"]
        if merged["low_submitted"] else 0.0
    )
    # Render in the exact key order ScenarioMetrics.as_dict uses, so a
    # merged dict and a single-engine dict serialize identically.
    order = (
        "total_submitted", "accepted", "rejected", "completed", "unfinished",
        "failed", "deadlines_fulfilled", "pct_deadlines_fulfilled",
        "avg_slowdown", "avg_delay_of_late_jobs", "completed_late",
        "utilisation", "acceptance_pct", "high_pct_fulfilled",
        "low_pct_fulfilled", "high_submitted", "high_fulfilled",
        "low_submitted", "low_fulfilled",
    )
    return {key: merged[key] for key in order}


def _format_sample(value: float) -> str:
    """Deterministic Prometheus sample rendering (ints without dots)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class ShardRouter:
    """Stateless fan-out front-end over N shard worker URLs.

    Parameters
    ----------
    config:
        The *unsharded* base :class:`EngineConfig`; the router re-derives
        the shard plan from it (node counts feed the metrics merge).
    backends:
        One worker base URL per shard; index is the shard id.
    timeout:
        Per-forward HTTP timeout (seconds).
    max_request_bytes:
        Body-size limit advertised to the shared HTTP handler.
    failure_threshold / breaker_reset:
        Per-shard circuit breaker tuning: consecutive transport
        failures before the circuit opens, and the cooldown before a
        half-open probe.
    forward_retries / retry_backoff:
        Bounded per-request retry on transport failure or shedding:
        up to ``forward_retries`` re-sends with deterministic
        exponential backoff (``retry_backoff * 2**attempt``), a shard's
        ``Retry-After`` hint overriding the computed delay.
    max_parked:
        Failover parking capacity per shard; ``0`` (the default)
        disables parking — submits to a down shard get the typed
        ``unavailable`` error instead.
    clock / sleep:
        Injectable time sources so breaker/retry schedules are
        deterministic under test.
    """

    def __init__(
        self,
        config: EngineConfig,
        backends: list[str],
        timeout: float = 10.0,
        max_request_bytes: int = 1024 * 1024,
        registry: Optional[MetricsRegistry] = None,
        failure_threshold: int = 5,
        breaker_reset: float = 0.5,
        forward_retries: int = 1,
        retry_backoff: float = 0.05,
        max_parked: int = 0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not backends:
            raise ValueError("need at least one shard backend")
        if forward_retries < 0:
            raise ValueError("forward_retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if max_parked < 0:
            raise ValueError("max_parked must be >= 0")
        self.config = config
        self.configs = plan_shards(config, len(backends))
        self.backends = [url.rstrip("/") for url in backends]
        self.num_shards = len(backends)
        self.timeout = float(timeout)
        self.max_request_bytes = int(max_request_bytes)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.draining = False
        self.forward_retries = int(forward_retries)
        self.retry_backoff = float(retry_backoff)
        self.max_parked = int(max_parked)
        self._sleep = sleep
        self.breakers = [
            ShardBreaker(
                shard, failure_threshold=failure_threshold,
                reset_timeout=breaker_reset, clock=clock,
            )
            for shard in range(self.num_shards)
        ]
        self.parking = [
            ParkingLot(shard, max_parked) for shard in range(self.num_shards)
        ]
        #: One lock per shard serialises park/flush ordering decisions.
        self._park_locks = [threading.Lock() for _ in range(self.num_shards)]
        #: Worker pids, filled in by the supervisor (surfaced on /healthz
        #: so chaos harnesses can aim their kill -9 at a real shard).
        self.shard_pids: dict[int, int] = {}

    # -- low-level forwarding ----------------------------------------------
    def _forward_once(
        self, shard: int, body: bytes
    ) -> tuple[int, dict[str, Any], bool]:
        """One POST attempt: ``(status, response, shard_fault)``.

        ``shard_fault`` is True for failures that indict the *shard*
        (connection refused/reset/timeout, or a malformed/truncated
        response body) — these feed its circuit breaker.  App-level
        refusals prove the shard is alive and do not.
        """
        request = urllib.request.Request(
            f"{self.backends[shard]}/v1/rpc",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                status = resp.status
                raw = resp.read().decode("utf-8", errors="replace")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                return exc.code, json.loads(raw), False
            except json.JSONDecodeError:
                return exc.code, protocol.error_response(
                    ErrorCode.INTERNAL, raw or str(exc)
                ), False
        except (urllib.error.URLError, OSError) as exc:
            self._note_forward_error(shard)
            return 503, protocol.error_response(
                ErrorCode.UNAVAILABLE, f"shard {shard}: {type(exc).__name__}: {exc}"
            ), True
        try:
            parsed = json.loads(raw)
            if not isinstance(parsed, dict):
                raise json.JSONDecodeError("response is not an object", raw, 0)
            return status, parsed, False
        except json.JSONDecodeError as exc:
            # A 200 with an unparseable body means the shard died (or
            # was truncated) mid-response: a typed per-shard fault, not
            # an exception loose in the router's handler thread.
            self._note_forward_error(shard)
            return 503, protocol.error_response(
                ErrorCode.UNAVAILABLE,
                f"shard {shard}: malformed response body ({exc})",
            ), True

    def _note_forward_error(self, shard: int) -> None:
        self.registry.counter(
            "router_forward_errors_total",
            "Transport failures forwarding to a shard",
            shard=str(shard),
        ).inc()

    def _retry_delay(self, attempt: int, response: dict[str, Any]) -> float:
        """Deterministic backoff; a shard's Retry-After hint wins."""
        hint = response.get("error", {}).get("retry_after")
        if isinstance(hint, (int, float)) and hint >= 0:
            # Cap the shard's hint: a forward retry must stay cheap
            # relative to the client's own retry budget.
            return min(float(hint), self.timeout, 1.0)
        return self.retry_backoff * (2 ** attempt)

    def _fail_fast(self, shard: int) -> tuple[int, dict[str, Any]]:
        """Breaker is open: answer without touching the wire."""
        self.registry.counter(
            "router_breaker_fast_fail_total",
            "Requests refused while a shard's circuit was open",
            shard=str(shard),
        ).inc()
        return 503, protocol.error_response(
            ErrorCode.UNAVAILABLE,
            f"shard {shard}: circuit open",
            retry_after=round(self.breakers[shard].retry_after(), 6),
        )

    def _post(self, shard: int, body: bytes) -> tuple[int, dict[str, Any]]:
        """POST one raw RPC body to a shard, with breaker + bounded retry."""
        breaker = self.breakers[shard]
        if not breaker.allow():
            return self._fail_fast(shard)
        attempts = self.forward_retries + 1
        status, response = 503, protocol.error_response(
            ErrorCode.UNAVAILABLE, f"shard {shard}: unreachable"
        )
        for attempt in range(attempts):
            status, response, shard_fault = self._forward_once(shard, body)
            if shard_fault:
                breaker.record_failure()
            else:
                breaker.record_success()
                code = response.get("error", {}).get("code")
                if code != ErrorCode.OVERLOADED:
                    return status, response
            if attempt + 1 >= attempts or not breaker.allow():
                break
            delay = self._retry_delay(attempt, response)
            if delay > 0:
                self._sleep(delay)
        return status, response

    def _get(self, shard: int, path: str) -> tuple[int, Optional[dict[str, Any]], str]:
        """GET a side endpoint from one shard: ``(status, json, text)``."""
        request = urllib.request.Request(
            f"{self.backends[shard]}{path}", method="GET"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                raw = resp.read().decode("utf-8")
                status = resp.status
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            status = exc.code
        except (urllib.error.URLError, OSError):
            return 0, None, ""
        try:
            return status, json.loads(raw), raw
        except json.JSONDecodeError:
            return status, None, raw

    def _fan_out(self, bodies: list[Optional[bytes]]) -> list[Optional[tuple[int, dict[str, Any]]]]:
        """POST per-shard bodies concurrently; ``None`` body skips a shard."""
        results: list[Optional[tuple[int, dict[str, Any]]]] = [None] * self.num_shards
        active = [i for i, body in enumerate(bodies) if body is not None]
        if len(active) == 1:
            only = active[0]
            body = bodies[only]
            assert body is not None
            results[only] = self._post(only, body)
            return results

        def worker(shard: int, body: bytes) -> None:
            results[shard] = self._post(shard, body)

        threads = []
        for shard in active:
            body = bodies[shard]
            assert body is not None
            threads.append(threading.Thread(
                target=worker, args=(shard, body),
                name=f"repro-router-fanout-{shard}", daemon=True,
            ))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results

    # -- failover parking ---------------------------------------------------
    @property
    def parking_enabled(self) -> bool:
        return self.max_parked > 0

    @staticmethod
    def _job_key(job: dict[str, Any]) -> Optional[int]:
        job_id = job.get("id")
        if isinstance(job_id, int) and not isinstance(job_id, bool):
            return job_id
        return None

    def _owner_of(self, job: dict[str, Any]) -> int:
        user = job.get("user")
        return shard_for_submit(
            self._job_key(job),
            user if isinstance(user, str) else None,
            self.num_shards,
        )

    def _shard_ready(self, shard: int) -> bool:
        """May a submit be forwarded to ``shard`` directly right now?

        Not ready while the breaker refuses *or* while parked submits
        are still queued — forwarding past a non-empty lot would reorder
        the shard's WAL relative to an un-killed run.  A non-empty lot
        with a willing breaker triggers an in-order flush attempt first.
        """
        lot = self.parking[shard]
        with self._park_locks[shard]:
            if len(lot) and self.breakers[shard].allow():
                self._flush_locked(shard)
            return len(lot) == 0 and self.breakers[shard].allow()

    def _flush_locked(self, shard: int) -> int:
        """Replay the lot oldest-first; caller holds the shard's park lock."""
        lot = self.parking[shard]
        items = lot.take_all()
        flushed = 0
        while items:
            status, response, shard_fault = self._forward_once(
                shard, items[0].body
            )
            if shard_fault:
                # Shard died again mid-flush: everything not yet replayed
                # (including this one) goes back to the head, in order.
                self.breakers[shard].record_failure()
                lot.requeue_front(items)
                break
            # Non-transport answers (accepted, duplicate, conflict …)
            # are the shard's recorded decision; the parked client was
            # already acked, so the response itself is dropped.
            self.breakers[shard].record_success()
            items.pop(0)
            flushed += 1
        if flushed:
            lot.note_flushed(flushed)
            self.registry.counter(
                "router_park_flushed_total",
                "Parked submits replayed to a recovered shard",
                shard=str(shard),
            ).inc(flushed)
            log.info("shard %d recovered: flushed %d parked submit(s)",
                     shard, flushed)
        return flushed

    def flush_parking(self) -> dict[str, int]:
        """Flush every shard whose breaker allows it; ``{shard: flushed}``."""
        flushed: dict[str, int] = {}
        if not self.parking_enabled:
            return flushed
        for shard in range(self.num_shards):
            lot = self.parking[shard]
            with self._park_locks[shard]:
                if len(lot) and self.breakers[shard].allow():
                    count = self._flush_locked(shard)
                    if count:
                        flushed[str(shard)] = count
        return flushed

    def _park_submit(
        self, shard: int, job: dict[str, Any], body: bytes
    ) -> tuple[int, dict[str, Any]]:
        """Park one raw submit frame for ``shard``; typed overflow refusal."""
        key = self._job_key(job)
        lot = self.parking[shard]
        with self._park_locks[shard]:
            accepted = lot.park(key, body)
        if not accepted:
            self.registry.counter(
                "router_park_rejected_total",
                "Submits refused because a shard's parking lot was full",
                shard=str(shard),
            ).inc()
            return 503, protocol.error_response(
                ErrorCode.PARKING_FULL,
                f"shard {shard} is down and its parking lot "
                f"({lot.capacity}) is full",
                retry_after=round(
                    max(self.breakers[shard].retry_after(), self.retry_backoff),
                    6,
                ),
            )
        self.registry.counter(
            "router_parked_total",
            "Submits parked for a down shard",
            shard=str(shard),
        ).inc()
        payload: dict[str, Any] = {"shard": shard}
        if key is not None:
            payload["job"] = key
        return 200, protocol.ok_response("parked", **payload)

    @staticmethod
    def _single_submit_frame(job: dict[str, Any]) -> bytes:
        """A batch item re-framed as the single submit its flush will send."""
        return protocol.encode({
            "v": protocol.PROTOCOL_VERSION, "type": "submit", "job": job,
        })

    # -- request handling ---------------------------------------------------
    def handle(self, body: bytes) -> tuple[int, dict[str, Any]]:
        """Route one protocol request; returns ``(http_status, response)``."""
        t0 = perf_counter()
        rtype = "invalid"
        try:
            request = protocol.parse_request(body)
            rtype = type(request).__name__.replace("Request", "").lower()
            if self.draining:
                err = protocol.error_response(
                    ErrorCode.SHUTTING_DOWN, "router is shutting down"
                )
                return protocol.HTTP_STATUS[ErrorCode.SHUTTING_DOWN], err
            status, response = self._route(request, body)
        except ProtocolError as exc:
            status, response = exc.http_status, protocol.error_response(
                exc.code, exc.message
            )
        finally:
            self.registry.histogram(
                "router_request_seconds", "Router request handling latency",
                buckets=(0.0005, 0.0025, 0.01, 0.05, 0.25, 1.0), type=rtype,
            ).observe(perf_counter() - t0)
        outcome = "ok" if response.get("ok") else response.get(
            "error", {}
        ).get("code", "error")
        self.registry.counter(
            "router_requests_total", "Routed requests by type and outcome",
            type=rtype, outcome=outcome,
        ).inc()
        return status, response

    def _route(self, request: Any, body: bytes) -> tuple[int, dict[str, Any]]:
        if isinstance(request, protocol.SubmitRequest):
            # Works unchanged at one shard (the owner is shard 0), so the
            # healthy path stays a raw byte-identical passthrough.
            shard = self._owner_of(request.job)
            if self.parking_enabled and not self._shard_ready(shard):
                return self._park_submit(shard, request.job, body)
            status, response = self._post(shard, body)
            if (
                self.parking_enabled
                and response.get("error", {}).get("code") == ErrorCode.UNAVAILABLE
            ):
                # The shard died under this very request: park it rather
                # than surfacing the error — the first casualty of a
                # crash gets the same no-loss guarantee as the backlog.
                return self._park_submit(shard, request.job, body)
            return status, response
        if isinstance(request, protocol.BatchRequest):
            if self.num_shards == 1 and not (
                self.parking_enabled and not self._shard_ready(0)
            ):
                return self._post(0, body)
            return self._route_batch(request)
        if self.num_shards == 1:
            # One shard IS the unsharded server: every other RPC
            # (including stats/drain/checkpoint, which would otherwise
            # re-merge) passes through raw, keeping the router
            # byte-invisible.  Any parked backlog settles first so
            # stats/advance/drain see the full stream.
            self.flush_parking()
            return self._post(0, body)
        if isinstance(request, (protocol.QueryRequest, protocol.TraceRequest)):
            shard = shard_for_submit(request.job_id, None, self.num_shards)
            return self._post(shard, body)
        if isinstance(request, protocol.StatsRequest):
            return self._route_stats(body)
        if isinstance(request, protocol.AdvanceRequest):
            return self._route_advance(body)
        if isinstance(request, protocol.DrainRequest):
            return self._route_drain(body)
        if isinstance(request, protocol.CheckpointRequest):
            return self._route_checkpoint(request)
        raise ProtocolError(  # pragma: no cover - parse_request is exhaustive
            ErrorCode.UNKNOWN_TYPE, f"unroutable request {type(request).__name__}"
        )

    def _route_batch(self, request: protocol.BatchRequest) -> tuple[int, dict[str, Any]]:
        """Split a batch frame by shard, forward concurrently, re-merge."""
        slots: list[list[int]] = [[] for _ in range(self.num_shards)]
        for position, job in enumerate(request.jobs):
            job_id = job.get("id")
            user = job.get("user")
            shard = shard_for_submit(
                job_id if isinstance(job_id, int) and not isinstance(job_id, bool)
                else None,
                user if isinstance(user, str) else None,
                self.num_shards,
            )
            slots[shard].append(position)
        results: list[Optional[dict[str, Any]]] = [None] * len(request.jobs)
        bodies: list[Optional[bytes]] = [None] * self.num_shards
        for shard in range(self.num_shards):
            if not slots[shard]:
                continue
            if self.parking_enabled and not self._shard_ready(shard):
                # Only the down shard's items park; siblings forward.
                for position in slots[shard]:
                    job = request.jobs[position]
                    _, parked = self._park_submit(
                        shard, job, self._single_submit_frame(job)
                    )
                    results[position] = parked
                continue
            bodies[shard] = protocol.encode({
                "v": protocol.PROTOCOL_VERSION, "type": "batch",
                "jobs": [request.jobs[p] for p in slots[shard]],
            })
        answers = self._fan_out(bodies)
        for shard in range(self.num_shards):
            if not slots[shard] or bodies[shard] is None:
                continue
            answer = answers[shard]
            assert answer is not None
            status, response = answer
            items = response.get("results") if response.get("ok") else None
            failed_code = response.get("error", {}).get("code")
            for offset, position in enumerate(slots[shard]):
                if items is not None and offset < len(items):
                    results[position] = items[offset]
                elif (
                    self.parking_enabled
                    and failed_code == ErrorCode.UNAVAILABLE
                ):
                    # The shard died mid-batch: its items park instead
                    # of surfacing the frame error (lot-full still
                    # yields the typed overflow refusal per item).
                    job = request.jobs[position]
                    _, parked = self._park_submit(
                        shard, job, self._single_submit_frame(job)
                    )
                    results[position] = parked
                else:
                    # Whole sub-frame failed (shard down, shedding):
                    # every one of its items inherits the frame error.
                    results[position] = dict(response)
        merged = [r if r is not None else protocol.error_response(
            ErrorCode.INTERNAL, "batch item lost in routing"
        ) for r in results]
        return 200, protocol.ok_response("batch", results=merged)

    def _route_stats(self, body: bytes) -> tuple[int, dict[str, Any]]:
        self.flush_parking()
        answers = self._fan_out([body] * self.num_shards)
        shards: dict[str, Any] = {}
        merged = {"submitted": 0, "accepted": 0, "rejected": 0, "completed": 0}
        horizon = 0.0
        reachable = 0
        for shard in range(self.num_shards):
            answer = answers[shard]
            assert answer is not None
            status, response = answer
            if response.get("ok"):
                stats = response["stats"]
                shards[str(shard)] = stats
                reachable += 1
                for key in ("submitted", "accepted", "rejected", "completed"):
                    merged[key] += int(stats.get(key, 0))
                horizon = max(horizon, float(stats.get("t", 0.0)))
            else:
                shards[str(shard)] = {"error": response.get("error", {})}
        payload = dict(merged)
        payload["t"] = horizon
        payload["shard_count"] = self.num_shards
        payload["shards_reachable"] = reachable
        payload["shards"] = shards
        return 200, protocol.ok_response("stats", stats=payload)

    def _route_advance(self, body: bytes) -> tuple[int, dict[str, Any]]:
        # Parked submits must land before the fleet clock moves past
        # their submit times, or replay order would differ.
        self.flush_parking()
        answers = self._fan_out([body] * self.num_shards)
        horizon = 0.0
        events = 0
        for shard in range(self.num_shards):
            answer = answers[shard]
            assert answer is not None
            status, response = answer
            if not response.get("ok"):
                return status, response
            horizon = max(horizon, float(response["t"]))
            events += int(response["events"])
        return 200, protocol.ok_response("advanced", t=horizon, events=events)

    def _route_drain(self, body: bytes) -> tuple[int, dict[str, Any]]:
        # A drain is the fleet's settlement point: replay any parked
        # backlog first so the drained metrics include every acked
        # submit (byte-identical to an un-killed run once flushed).
        self.flush_parking()
        answers = self._fan_out([body] * self.num_shards)
        horizon = 0.0
        per_shard: list[dict[str, Any]] = []
        shards: dict[str, Any] = {}
        for shard in range(self.num_shards):
            answer = answers[shard]
            assert answer is not None
            status, response = answer
            if not response.get("ok"):
                # A failed drain leaves the fleet half-drained; surface
                # the first failure rather than inventing merged numbers.
                return status, response
            horizon = max(horizon, float(response["t"]))
            per_shard.append(response["metrics"])
            shards[str(shard)] = response["metrics"]
        merged = merge_scenario_metrics(
            per_shard, [cfg.num_nodes for cfg in self.configs]
        )
        response = protocol.ok_response("drained", t=horizon, metrics=merged)
        if self.num_shards > 1:
            response["shards"] = shards
        return 200, response

    def _route_checkpoint(
        self, request: protocol.CheckpointRequest
    ) -> tuple[int, dict[str, Any]]:
        if request.path is None:
            raise ProtocolError(
                ErrorCode.INVALID_FIELD,
                "a sharded checkpoint requires a path (inline snapshots "
                "do not compose across shards)",
            )
        bodies: list[Optional[bytes]] = []
        paths: dict[str, str] = {}
        for shard in range(self.num_shards):
            target = shard_path(request.path, shard, self.num_shards)
            paths[str(shard)] = target
            bodies.append(protocol.encode({
                "v": protocol.PROTOCOL_VERSION, "type": "checkpoint",
                "path": target,
            }))
        answers = self._fan_out(bodies)
        for shard in range(self.num_shards):
            answer = answers[shard]
            assert answer is not None
            status, response = answer
            if not response.get("ok"):
                return status, response
        return 200, protocol.ok_response("checkpoint", paths=paths)

    # -- read-only side endpoints -------------------------------------------
    def stats_response(self) -> dict[str, Any]:
        body = protocol.encode({"v": protocol.PROTOCOL_VERSION, "type": "stats"})
        if self.num_shards == 1:
            return self._post(0, body)[1]
        return self._route_stats(body)[1]

    def health_response(self) -> dict[str, Any]:
        """Merged ``GET /healthz``: the fleet's worst news, summarized.

        ``status`` is ``"ok"`` only when every shard answers ``"ok"``;
        one draining / degraded / unreachable shard makes the fleet
        ``"degraded"`` (still routable — the healthy shards keep
        serving); all shards unreachable is ``"down"`` (``ok: false``,
        served as 503 so load balancers stop routing); a draining
        router reports ``"draining"``.
        """
        probes: list[tuple[int, Optional[dict[str, Any]]]] = []
        for shard in range(self.num_shards):
            status, payload, _ = self._get(shard, "/healthz")
            probes.append((status, payload))
            # Health probes drive the breaker alongside forwards: a dead
            # probe re-arms the cooldown without waiting for a request
            # to burn a connect timeout; a healthy one closes the
            # circuit so the parked backlog can flush immediately.
            if payload is None:
                self.breakers[shard].record_failure()
            elif bool(payload.get("ok", status == 200)):
                self.breakers[shard].record_success()
        self.flush_parking()

        shards: dict[str, Any] = {}
        down = 0
        worst_ok = True
        parked = 0
        for shard, (status, payload) in enumerate(probes):
            entry: dict[str, Any] = {"url": self.backends[shard]}
            pid = self.shard_pids.get(shard)
            if pid is not None:
                entry["pid"] = pid
            if payload is None:
                entry["status"] = "down"
                entry["ok"] = False
                down += 1
                worst_ok = False
            else:
                entry["status"] = payload.get("status", "ok")
                entry["ok"] = bool(payload.get("ok", status == 200))
                if entry["status"] != "ok":
                    worst_ok = False
            entry["breaker"] = self.breakers[shard].snapshot()
            if self.parking_enabled:
                entry["parking"] = self.parking[shard].snapshot()
                parked += len(self.parking[shard])
            shards[str(shard)] = entry
        if self.draining:
            status_text = "draining"
        elif down == self.num_shards:
            status_text = "down"
        elif not worst_ok:
            status_text = "degraded"
        else:
            status_text = "ok"
        out: dict[str, Any] = {
            "ok": status_text not in ("down", "draining"),
            "status": status_text,
            "shard_count": self.num_shards,
            "shards_down": down,
            "shards": shards,
        }
        if self.parking_enabled:
            out["parked"] = parked
            out["parking_capacity"] = self.max_parked * self.num_shards
        return out

    def prometheus_text(self) -> str:
        """Merged ``GET /metrics``: every shard sample gains a shard label.

        Series are re-rendered in sorted ``(name, labels)`` order, so
        the merged exposition is deterministic whenever the per-shard
        expositions are.
        """
        for shard in range(self.num_shards):
            breaker = self.breakers[shard]
            self.registry.gauge(
                "router_breaker_state",
                "Shard circuit state (0 closed, 1 half-open, 2 open)",
                shard=str(shard),
            ).set({CLOSED: 0, HALF_OPEN: 1, OPEN: 2}[breaker.state])
            self.registry.gauge(
                "router_breaker_trips",
                "Times a shard's circuit has opened",
                shard=str(shard),
            ).set(breaker.trips)
            if self.parking_enabled:
                lot = self.parking[shard]
                self.registry.gauge(
                    "router_parked",
                    "Submits currently parked for a down shard",
                    shard=str(shard),
                ).set(len(lot))
        lines: list[str] = [
            "# Merged from %d shard(s); every sample carries a shard label."
            % self.num_shards
        ]
        samples: list[tuple[str, tuple[tuple[str, str], ...], float]] = []
        for shard in range(self.num_shards):
            status, _, text = self._get(shard, "/metrics")
            if status != 200 or not text:
                continue
            parsed = parse_prometheus(text)
            for name in sorted(parsed):
                for labels, value in sorted(parsed[name].items()):
                    merged_labels = tuple(sorted(
                        labels + (("shard", str(shard)),)
                    ))
                    samples.append((name, merged_labels, value))
        samples.sort(key=lambda s: (s[0], s[1]))
        for name, labels, value in samples:
            blob = ",".join(f'{k}="{v}"' for k, v in labels)
            lines.append(f"{name}{{{blob}}} {_format_sample(value)}")
        from repro.obs.exporters import prometheus_text

        lines.append(prometheus_text(self.registry))
        return "\n".join(lines) + "\n"


class RouterServer:
    """HTTP lifecycle wrapper for a :class:`ShardRouter`.

    Reuses the single-server request handler (the router duck-types
    :class:`~repro.service.server.AdmissionService`'s read surface), so
    the sharded front-end speaks byte-identical HTTP.
    """

    def __init__(
        self,
        router: ShardRouter,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        from repro.service.server import _Handler, _TrackingServer

        self.router = router
        self._httpd = _TrackingServer((host, port), _Handler)
        self._httpd.service = router  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "RouterServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-router", daemon=True
        )
        self._thread.start()
        log.info("shard router listening on %s (%d shards)",
                 self.url, self.router.num_shards)
        return self

    def serve_forever(self) -> None:
        log.info("shard router listening on %s (%d shards)",
                 self.url, self.router.num_shards)
        self._httpd.serve_forever()

    def stop(self) -> bool:
        self.router.draining = True
        self._httpd.shutdown()
        self._httpd.server_close()
        clean = True
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            if self._thread.is_alive():
                clean = False
                log.error("router thread still alive 5s after shutdown")
            else:
                self._thread = None
        for worker in self._httpd.alive_handlers():
            worker.join(timeout=5.0)
            if worker.is_alive():
                clean = False
                log.error("router handler %s wedged at shutdown", worker.name)
        return clean

    def __enter__(self) -> "RouterServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


__all__ = ["RouterServer", "ShardRouter", "merge_scenario_metrics"]
# (ShardBreaker and ParkingLot are exported via repro.service.sharding.)
