"""Per-shard circuit breaker for the routing front-end.

The router forwards every request over HTTP, so a dead or wedged shard
would otherwise cost a full connect timeout *per request* — and a
recovering shard would be hammered by the backlog the instant it binds
its port.  The classic three-state breaker fixes both:

* **closed** — healthy; every forward is allowed.  Consecutive
  transport-level failures (connection refused/reset/timeout, or a
  malformed response body) are counted; app-level refusals (4xx, 409
  conflicts, shedding 503s) are *not* — they prove the shard is alive.
* **open** — tripped after ``failure_threshold`` consecutive failures;
  forwards fail fast (no connect attempt) until ``reset_timeout``
  elapses.  The remaining wait is surfaced as a ``Retry-After`` hint.
* **half-open** — the cooldown expired; probes are allowed through.
  One success closes the breaker, one failure re-opens it (restarting
  the cooldown).

The clock is injectable (``time.monotonic`` by default) so tests drive
state transitions without sleeping.  All methods are thread-safe — the
router's HTTP handler threads share one breaker per shard.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "ShardBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class ShardBreaker:
    """Consecutive-failure circuit breaker guarding one shard's forwards."""

    def __init__(
        self,
        shard_id: int,
        failure_threshold: int = 5,
        reset_timeout: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0")
        self.shard_id = int(shard_id)
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        #: Lifetime trip count (for /metrics).
        self.trips = 0

    # -- queries ------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a forward (or probe) be attempted right now?"""
        with self._lock:
            return self._state_locked() != OPEN

    def retry_after(self) -> float:
        """Seconds until the next probe would be allowed (0 when allowed)."""
        with self._lock:
            if self._state_locked() != OPEN:
                return 0.0
            remaining = self.reset_timeout - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    # -- outcomes -----------------------------------------------------------
    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._trip_locked()
            else:
                # A failed half-open probe (or a failure racing the
                # cooldown) restarts the full cooldown.
                self._trip_locked()

    def _trip_locked(self) -> None:
        if self._state != OPEN:
            self.trips += 1
        self._state = OPEN
        self._failures = self.failure_threshold
        self._opened_at = self._clock()

    def snapshot(self) -> dict[str, Any]:
        """Health-endpoint view of the breaker."""
        with self._lock:
            state = self._state_locked()
            out: dict[str, Any] = {
                "state": state,
                "consecutive_failures": self._failures if state == CLOSED else
                self.failure_threshold,
                "trips": self.trips,
            }
            if state == OPEN:
                remaining = self.reset_timeout - (self._clock() - self._opened_at)
                out["retry_after"] = round(max(0.0, remaining), 6)
            return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardBreaker shard={self.shard_id} state={self.state} "
            f"trips={self.trips}>"
        )
