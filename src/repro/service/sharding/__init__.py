"""Sharded multi-engine admission service.

One admission engine is bounded by a single interpreter; this package
scales the service sideways without giving up the repo's standard of
proof (byte-identical exports, deterministic traces):

* :mod:`~repro.service.sharding.partition` — deterministic shard plan:
  the cluster's nodes are split into N contiguous slices, each backed
  by its own :class:`~repro.service.engine.AdmissionEngine` with a
  distinct trace-id seed, and jobs are pinned to shards by a stable
  job-id/user hash (``zlib.crc32``, never ``hash()``);
* :mod:`~repro.service.sharding.paths` — shard-namespaced WAL and
  checkpoint filenames, so N workers can share one state directory
  without clobbering each other;
* :mod:`~repro.service.sharding.router` — the stateless front-end:
  same HTTP surface as a single server, raw-body pass-through for
  single-shard requests (a 1-shard router is byte-identical on the
  wire to an unsharded server), per-shard splitting for batch frames,
  exact metric merging for ``drain``/``stats``/``/metrics``;
* :mod:`~repro.service.sharding.breaker` — per-shard circuit breakers
  (closed/open/half-open) so a dead shard fails fast instead of
  costing a connect timeout per request;
* :mod:`~repro.service.sharding.parking` — deterministic failover
  parking: submits owned by a down shard queue in arrival order and
  flush in order on recovery, so a shard kill leaves no client-visible
  submit loss and byte-identical end state;
* :mod:`~repro.service.sharding.supervisor` — one worker process per
  shard, watched and respawned with exponential backoff and an
  uptime-refilled restart budget: ``kill -9`` one worker and it
  recovers from its own WAL while every other shard keeps serving.

``repro serve --shards N`` wires all of it together; see
``docs/SERVICE.md``.
"""

from repro.service.sharding.breaker import ShardBreaker
from repro.service.sharding.parking import ParkingLot
from repro.service.sharding.partition import (
    plan_shards,
    shard_for_job,
    shard_for_submit,
    shard_for_user,
    shard_node_counts,
)
from repro.service.sharding.paths import (
    shard_checkpoint_path,
    shard_path,
    shard_port,
    shard_wal_path,
)
from repro.service.sharding.router import (
    RouterServer,
    ShardRouter,
    merge_scenario_metrics,
)
from repro.service.sharding.supervisor import (
    ShardSupervisor,
    WorkerSpec,
    WorkerState,
    free_ports,
)

__all__ = [
    "ParkingLot",
    "RouterServer",
    "ShardBreaker",
    "ShardRouter",
    "ShardSupervisor",
    "WorkerSpec",
    "WorkerState",
    "free_ports",
    "merge_scenario_metrics",
    "plan_shards",
    "shard_checkpoint_path",
    "shard_for_job",
    "shard_for_submit",
    "shard_for_user",
    "shard_node_counts",
    "shard_path",
    "shard_port",
    "shard_wal_path",
]
