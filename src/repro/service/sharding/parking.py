"""Deterministic failover parking for submits owned by a down shard.

When a shard worker dies, the supervisor respawns it and WAL recovery
rebuilds its engine — but that window used to be a hole of client
errors: every submit hashing to the dead shard was refused.  Parking
closes the hole *without* breaking determinism:

* submits owned by a down shard are **parked in arrival order** in a
  bounded per-shard FIFO and acked to the client (``type: "parked"``);
* when the shard recovers, the lot is **flushed in the same order**
  before any new submit is forwarded, so the shard's WAL records the
  exact request sequence an un-killed run would have recorded — which
  is what makes the post-drill WALs and merged metrics byte-identical;
* a full lot rejects with the typed ``parking_full`` error (plus a
  ``Retry-After`` hint) instead of growing without bound.

Parking an already-parked job id is idempotent (one slot, first-writer
wins), mirroring the engine's duplicate-submit idempotency.

The lot itself is a plain ordered container; thread exclusion is the
router's job (one lock per shard serialises park/flush decisions).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

__all__ = ["ParkedSubmit", "ParkingLot"]


class ParkedSubmit:
    """One parked raw submit body, keyed for idempotent re-parks."""

    __slots__ = ("key", "body")

    def __init__(self, key: Any, body: bytes) -> None:
        self.key = key
        self.body = body


class ParkingLot:
    """Bounded FIFO of raw submit bodies awaiting a shard's recovery."""

    def __init__(self, shard_id: int, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.shard_id = int(shard_id)
        self.capacity = int(capacity)
        #: insertion-ordered {key: ParkedSubmit}; anonymous submits get a
        #: unique sequence key so they can never collide.
        self._items: "OrderedDict[Any, ParkedSubmit]" = OrderedDict()
        self._anon_seq = 0
        #: Lifetime counters (for /metrics and the health endpoint).
        self.parked_total = 0
        self.flushed_total = 0
        self.rejected_total = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def park(self, job_id: Optional[int], body: bytes) -> bool:
        """Append one submit; returns ``False`` when the lot is full.

        A re-park of a job id already waiting keeps the *first* body and
        its queue position (the duplicate would be answered with
        ``duplicate: true`` on replay anyway).
        """
        if job_id is not None and job_id in self._items:
            return True
        if len(self._items) >= self.capacity:
            self.rejected_total += 1
            return False
        if job_id is None:
            self._anon_seq += 1
            key: Any = ("anon", self._anon_seq)
        else:
            key = job_id
        self._items[key] = ParkedSubmit(key, body)
        self.parked_total += 1
        return True

    def take_all(self) -> list[ParkedSubmit]:
        """Remove and return every parked submit, oldest first."""
        items = list(self._items.values())
        self._items.clear()
        return items

    def requeue_front(self, items: list[ParkedSubmit]) -> None:
        """Put un-flushed submits back at the head, preserving order.

        Used when a flush fails partway: the remainder (including the
        submit that failed) must stay ahead of anything parked since.
        """
        for item in reversed(items):
            self._items[item.key] = item
            self._items.move_to_end(item.key, last=False)

    def note_flushed(self, count: int) -> None:
        self.flushed_total += count

    def snapshot(self) -> dict[str, Any]:
        """Health-endpoint view of the lot."""
        return {
            "parked": len(self._items),
            "capacity": self.capacity,
            "parked_total": self.parked_total,
            "flushed_total": self.flushed_total,
            "rejected_total": self.rejected_total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ParkingLot shard={self.shard_id} parked={len(self._items)}/"
            f"{self.capacity}>"
        )
