"""Shard-safe filesystem naming for WALs, checkpoints, and ports.

Multiple shard workers may share one ``--wal`` / ``--checkpoint``
directory, so every on-disk artifact is namespaced by shard identity:
``svc.wal`` becomes ``svc.shard0of4.wal`` for shard 0 of 4.  The suffix
is inserted *before* the file extension so tooling keyed on extensions
(log rotation, `repro recover --wal`) keeps working.  Namespacing the
basename is also what keeps the checkpoint writer's atomic-rename
temp files (``mkstemp(prefix=basename + ".")``) from colliding between
shards in a shared directory.
"""

from __future__ import annotations

import os

__all__ = ["shard_path", "shard_wal_path", "shard_checkpoint_path", "shard_port"]


def shard_path(base: str, shard_id: int, shard_count: int) -> str:
    """Namespace ``base`` by shard identity, preserving the extension."""
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    if not 0 <= shard_id < shard_count:
        raise ValueError("shard_id must be in [0, shard_count)")
    root, ext = os.path.splitext(base)
    return f"{root}.shard{shard_id}of{shard_count}{ext}"


def shard_wal_path(base: str, shard_id: int, shard_count: int) -> str:
    """Per-shard WAL filename derived from the shared ``--wal`` base."""
    return shard_path(base, shard_id, shard_count)


def shard_checkpoint_path(base: str, shard_id: int, shard_count: int) -> str:
    """Per-shard checkpoint filename derived from the shared base."""
    return shard_path(base, shard_id, shard_count)


def shard_port(base_port: int, shard_id: int) -> int:
    """Deterministic worker port: ``base_port + 1 + shard_id``.

    The router owns ``base_port``; workers line up after it so one
    ``--port`` flag names the whole port range.  ``base_port == 0``
    (ephemeral) stays 0 — every worker then binds its own free port.
    """
    if base_port == 0:
        return 0
    return base_port + 1 + shard_id
