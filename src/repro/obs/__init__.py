"""repro.obs — the observability layer.

Everything needed to see *inside* a simulation run:

* :mod:`repro.obs.metrics` — deterministic counters/gauges/histograms;
* :mod:`repro.obs.hooks` — the observer protocols the core exposes;
* :mod:`repro.obs.session` — :class:`ObsSession` wires one run,
  :class:`RunSink` captures many;
* :mod:`repro.obs.profiling` — wall-time and heap-depth profiling;
* :mod:`repro.obs.exporters` — JSON-lines, Prometheus text, run report;
* :mod:`repro.obs.inspect` — replay a JSON-lines log;
* :mod:`repro.obs.log` — the shared ``repro.*`` logging configuration.

See ``docs/OBSERVABILITY.md`` for the full guide.
"""

from repro.obs.exporters import (
    prometheus_text,
    read_jsonl,
    run_report,
    write_jsonl,
)
from repro.obs.hooks import LifecycleObserver, PolicyObserver
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiling import Profiler
from repro.obs.session import ObsSession, RunSink, active_sink

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LifecycleObserver",
    "MetricsRegistry",
    "ObsSession",
    "PolicyObserver",
    "Profiler",
    "RunSink",
    "active_sink",
    "configure_logging",
    "get_logger",
    "prometheus_text",
    "read_jsonl",
    "run_report",
    "write_jsonl",
]
