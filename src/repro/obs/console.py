"""`repro top` — a live ANSI operator console for the admission service.

Polls the three read-only HTTP endpoints (``/healthz``, ``/v1/stats``,
``/metrics``), assembles one :func:`console_snapshot` per poll, and
renders a terminal dashboard: throughput, windowed loss ratio per
policy, admission-cache hit rate, WAL append/fsync latency and LSN
lag, shed/backpressure state, and the SLO burn rate with its
threshold-driven health status.

Plain ANSI rather than curses: the dashboard is a pure
string-rendering function over one snapshot dict (testable without a
terminal), redrawn with a home-and-clear escape each interval.  The
``--once --json`` mode prints :func:`deterministic_view` — the subset
of the snapshot derived only from engine counters and the injected
clock, which under a ``VirtualClock`` is byte-identical across
identical runs (the observability smoke job asserts exactly this).
"""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request
from typing import Any, Mapping, Optional, TextIO

#: ``name{label="v",...} value`` or ``name value`` (exposition format).
_SAMPLE_RE = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$')
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_YELLOW = "\x1b[33m"
_GREEN = "\x1b[32m"
_RESET = "\x1b[0m"

_STATUS_COLOR = {"ok": _GREEN, "degraded": _YELLOW, "draining": _RED}


def parse_prometheus(text: str) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """Parse exposition text into ``{name: {labels: value}}``.

    Labels are a sorted tuple of ``(key, value)`` pairs — hashable, and
    stable regardless of the exporter's label order.
    """
    out: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        name, label_blob, raw = match.groups()
        labels: tuple[tuple[str, str], ...] = ()
        if label_blob:
            labels = tuple(sorted(
                (m.group(1), m.group(2).replace('\\"', '"').replace("\\\\", "\\"))
                for m in _LABEL_RE.finditer(label_blob)
            ))
        try:
            value = float(raw)
        except ValueError:
            continue
        out.setdefault(name, {})[labels] = value
    return out


def metric_value(
    metrics: Mapping[str, Mapping[tuple[tuple[str, str], ...], float]],
    name: str,
    default: float = 0.0,
    **labels: str,
) -> float:
    """One sample of ``name`` matching the given label subset (summed)."""
    series = metrics.get(name)
    if not series:
        return default
    want = set(labels.items())
    total = 0.0
    found = False
    for sample_labels, value in series.items():
        if want <= set(sample_labels):
            total += value
            found = True
    return total if found else default


def _http_get(url: str, timeout: float) -> tuple[int, bytes]:
    request = urllib.request.Request(url, method="GET")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def console_snapshot(url: str, timeout: float = 5.0) -> dict[str, Any]:
    """Poll the service once; returns the raw dashboard source data."""
    base = url.rstrip("/")
    _, health_body = _http_get(f"{base}/healthz", timeout)
    health = json.loads(health_body.decode("utf-8"))
    _, stats_body = _http_get(f"{base}/v1/stats", timeout)
    stats = json.loads(stats_body.decode("utf-8")).get("stats", {})
    _, metrics_body = _http_get(f"{base}/metrics", timeout)
    metrics = parse_prometheus(metrics_body.decode("utf-8"))
    return {"health": health, "stats": stats, "metrics": metrics}


def deterministic_view(snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """The subset of a snapshot that is deterministic under ``VirtualClock``.

    Excludes every wall-clock-derived series (request latency
    histograms, rps); keeps the simulated clock, admission counters,
    windowed telemetry, cache counters, WAL positions and the SLO/health
    block.  Byte-identical across identical virtual-clock runs.
    """
    health = snapshot["health"]
    stats = snapshot["stats"]
    view: dict[str, Any] = {
        "t": stats.get("t"),
        "policy": stats.get("policy"),
        "status": health.get("status"),
        "counts": {
            key: stats.get(key)
            for key in (
                "submitted", "accepted", "rejected", "completed", "failed",
                "running", "queued",
            )
        },
        "slo": health.get("slo", {}),
        "wal": health.get("wal", {}),
    }
    if "acceptance_ratio" in stats:
        view["acceptance_ratio"] = stats["acceptance_ratio"]
    if "window" in stats:
        view["window"] = stats["window"]
    if "cache" in stats:
        view["cache"] = stats["cache"]
    return view


def _cache_hit_rate(stats: Mapping[str, Any]) -> Optional[float]:
    cache = stats.get("cache")
    if not cache:
        return None
    hits = sum(v for k, v in cache.items() if k.endswith("hits"))
    misses = sum(v for k, v in cache.items() if k.endswith("misses"))
    if hits + misses <= 0:
        return None
    return hits / (hits + misses)


def _histogram_mean(
    metrics: Mapping[str, Mapping[tuple[tuple[str, str], ...], float]],
    name: str,
) -> Optional[float]:
    count = metric_value(metrics, f"{name}_count", default=0.0)
    if count <= 0:
        return None
    return metric_value(metrics, f"{name}_sum", default=0.0) / count


def render_dashboard(
    snapshot: Mapping[str, Any],
    color: bool = True,
    clear: bool = True,
) -> str:
    """Render one snapshot as the ANSI dashboard text."""
    health = snapshot["health"]
    stats = snapshot["stats"]
    metrics = snapshot["metrics"]

    def paint(text: str, code: str) -> str:
        return f"{code}{text}{_RESET}" if color else text

    status = str(health.get("status", "unknown"))
    slo = health.get("slo", {})
    wal = health.get("wal", {})
    back = health.get("backpressure", {})

    lines: list[str] = []
    lines.append(
        paint("repro top", _BOLD)
        + f" — policy={stats.get('policy', '?')}"
        + f" t={stats.get('t', 0.0):.6g}s  status="
        + paint(status, _STATUS_COLOR.get(status, _YELLOW))
    )
    lines.append(
        f"jobs: submitted={stats.get('submitted', 0)} "
        f"accepted={stats.get('accepted', 0)} "
        f"rejected={stats.get('rejected', 0)} "
        f"completed={stats.get('completed', 0)} "
        f"running={stats.get('running', 0)} queued={stats.get('queued', 0)}"
    )
    requests_total = metric_value(metrics, "service_requests_total")
    request_mean = _histogram_mean(metrics, "service_request_seconds")
    throughput = f"requests: total={requests_total:.0f}"
    if request_mean is not None:
        throughput += f" mean_latency={request_mean * 1e3:.3g}ms"
    shed = metric_value(metrics, "service_requests_shed_total")
    throughput += f" shed={shed:.0f} inflight={back.get('inflight', 0)}"
    lines.append(throughput)

    window = stats.get("window")
    if window:
        lines.append(paint(f"window [{window.get('window_s', 0):.6g}s]", _BOLD))
        for name, pol in sorted(window.get("policies", {}).items()):
            loss = pol.get("loss_ratio", 0.0)
            code = _GREEN if loss < 0.1 else (_YELLOW if loss < 0.5 else _RED)
            line = (
                f"  {name}: submitted={pol.get('submitted', 0):.0f} "
                f"rejected={pol.get('rejected', 0):.0f} "
                f"loss_ratio={paint(f'{loss:.3f}', code)}"
            )
            reasons = pol.get("reject_reasons", {})
            if reasons:
                top = sorted(reasons.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
                line += "  reasons: " + ", ".join(
                    f"{reason}={count:.0f}" for reason, count in top
                )
            lines.append(line)

    cache_rate = _cache_hit_rate(stats)
    if cache_rate is not None:
        lines.append(f"admission cache: hit_rate={cache_rate:.3f}")

    if wal.get("enabled"):
        wal_line = (
            f"wal: appended_lsn={wal.get('appended_lsn', 0)} "
            f"applied_lsn={wal.get('applied_lsn', 0)} lag={wal.get('lag', 0)}"
        )
        if wal.get("compactions"):
            wal_line += (
                f" base_lsn={wal.get('base_lsn', 0)} "
                f"compactions={wal.get('compactions', 0)}"
            )
        append_mean = _histogram_mean(metrics, "service_wal_append_seconds")
        if append_mean is not None:
            wal_line += f" append_mean={append_mean * 1e3:.3g}ms"
        fsyncs = metric_value(metrics, "service_wal_fsyncs")
        wal_line += f" fsyncs={fsyncs:.0f}"
        lines.append(wal_line)

    shards = health.get("shards")
    if shards:
        header = f"fleet: {health.get('shard_count', len(shards))} shard(s)"
        if health.get("shards_down"):
            header += paint(f" down={health['shards_down']}", _RED)
        if "parked" in health:
            header += (
                f" parked={health.get('parked', 0)}"
                f"/{health.get('parking_capacity', 0)}"
            )
        lines.append(paint(header, _BOLD))
        for shard_id, entry in sorted(shards.items(), key=lambda kv: int(kv[0])):
            shard_status = str(entry.get("status", "?"))
            line = (
                f"  shard {shard_id}: "
                + paint(shard_status, _STATUS_COLOR.get(shard_status, _RED))
            )
            breaker = entry.get("breaker")
            if breaker:
                state = str(breaker.get("state", "?"))
                code = _GREEN if state == "closed" else (
                    _YELLOW if state == "half_open" else _RED
                )
                line += f" breaker={paint(state, code)}"
                if breaker.get("trips"):
                    line += f" trips={breaker['trips']}"
            parking = entry.get("parking")
            if parking:
                line += (
                    f" parked={parking.get('parked', 0)}"
                    f"/{parking.get('capacity', 0)}"
                )
                if parking.get("rejected_total"):
                    line += paint(
                        f" rejected={parking['rejected_total']}", _YELLOW
                    )
            lines.append(line)

    burn = slo.get("burn_rate", 0.0)
    code = _GREEN if burn <= 0.5 else (_YELLOW if burn <= 1.0 else _RED)
    lines.append(
        f"slo: deadline_miss={slo.get('deadline_miss_ratio', 0.0):.4f} "
        f"objective={slo.get('deadline_miss_objective', 0.0):.4f} "
        f"burn_rate={paint(f'{burn:.3f}', code)}"
    )

    dropped = metric_value(metrics, "engine_trace_events_dropped", default=-1.0)
    if dropped >= 0:
        lines.append(
            paint(f"event trace: dropped={dropped:.0f}", _DIM if not dropped else _YELLOW)
        )
    body = "\n".join(lines)
    return (_CLEAR + body) if (clear and color) else body


def run_top(
    url: str,
    interval: float = 2.0,
    once: bool = False,
    json_out: bool = False,
    color: bool = True,
    stream: Optional[TextIO] = None,
    iterations: Optional[int] = None,
) -> int:
    """The ``repro top`` loop; returns a process exit code.

    ``iterations`` bounds the number of polls (tests use it); ``once``
    is shorthand for a single poll without the clear-screen escape.
    """
    import sys

    out = stream if stream is not None else sys.stdout
    polls = 1 if once else iterations
    done = 0
    try:
        while True:
            try:
                snapshot = console_snapshot(url)
            except (OSError, ValueError) as exc:
                print(f"repro top: cannot poll {url}: {exc}", file=out)
                return 1
            if json_out:
                view = deterministic_view(snapshot)
                print(
                    json.dumps(
                        view, sort_keys=True, separators=(",", ":"),
                        ensure_ascii=False, allow_nan=False,
                    ),
                    file=out,
                )
            else:
                print(
                    render_dashboard(snapshot, color=color, clear=not once),
                    file=out,
                )
            done += 1
            if polls is not None and done >= polls:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


__all__ = [
    "console_snapshot",
    "deterministic_view",
    "metric_value",
    "parse_prometheus",
    "render_dashboard",
    "run_top",
]
