"""Exporters: JSON-lines, Prometheus text format, human-readable report.

Three ways out of the obs layer, all fed by the same record stream and
:class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`write_jsonl` / :func:`read_jsonl` — one JSON object per line,
  canonically serialized (sorted keys, no whitespace) so equal record
  streams produce **byte-identical** files;
* :func:`prometheus_text` — the Prometheus exposition text format, for
  scraping or eyeballing counters/gauges/histograms;
* :func:`run_report` — a terminal-friendly summary of one or more
  observed runs (also what ``repro inspect`` prints).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry

PathOrIO = Union[str, IO[str]]


# -- JSON lines ---------------------------------------------------------------

def jsonl_line(record: dict) -> str:
    """Canonical single-line serialization of one record."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), ensure_ascii=False,
        allow_nan=False,
    )


def write_jsonl_records(fp: IO[str], records: Iterable[dict]) -> int:
    """Append ``records`` to an open text stream; returns lines written."""
    n = 0
    for record in records:
        fp.write(jsonl_line(record))
        fp.write("\n")
        n += 1
    return n


def write_jsonl(path: str, records: Iterable[dict]) -> int:
    """Write ``records`` to ``path`` as JSON lines; returns lines written."""
    with open(path, "w", encoding="utf-8", newline="\n") as fp:
        return write_jsonl_records(fp, records)


def read_jsonl(source: PathOrIO) -> list[dict]:
    """Parse a JSON-lines file (or open stream) back into records.

    Blank lines are ignored; a malformed line raises ``ValueError``
    naming its line number.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fp:
            return read_jsonl(fp)
    records = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: invalid JSON record: {exc}") from exc
    return records


# -- Prometheus text format ---------------------------------------------------

def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _prom_labels(labels: dict[str, str], extra: Optional[tuple[str, str]] = None) -> str:
    items = list(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in items) + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus exposition text format."""
    return prometheus_from_dump(registry.collect())


def prometheus_from_dump(metric_dicts: Sequence[dict]) -> str:
    """Render collected metric dicts (e.g. a ``registry`` record from a
    JSON-lines log) in the Prometheus text format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for m in metric_dicts:
        name, kind = m["name"], m["kind"]
        labels = m.get("labels", {})
        if name not in seen_headers:
            seen_headers.add(name)
            lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            for bound, count in m["buckets"]:
                le = "+Inf" if bound == "+Inf" else _prom_value(float(bound))
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, ('le', le))} {count}"
                )
            lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_value(m['sum'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} {m['count']}")
        else:
            lines.append(f"{name}{_prom_labels(labels)} {_prom_value(m['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- human-readable run report ------------------------------------------------

def _split_runs(records: Sequence[dict]) -> list[list[dict]]:
    """Split a concatenated record stream at ``meta`` boundaries."""
    runs: list[list[dict]] = []
    current: list[dict] = []
    for record in records:
        if record.get("type") == "meta" and current:
            runs.append(current)
            current = []
        current.append(record)
    if current:
        runs.append(current)
    return runs


def _top_reasons(decisions: Sequence[dict], limit: int = 5) -> list[tuple[str, int]]:
    counts: dict[str, int] = {}
    for d in decisions:
        reason = d.get("reason", "<unspecified>")
        counts[reason] = counts.get(reason, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:limit]


def run_report(records: Sequence[dict]) -> str:
    """Summarise a record stream (one or many runs) as readable text."""
    runs = _split_runs(records)
    if not runs:
        return "empty record stream"
    blocks = []
    for i, run in enumerate(runs):
        blocks.append(_one_run_report(run, index=i, total=len(runs)))
    return "\n\n".join(blocks)


def _one_run_report(records: Sequence[dict], index: int, total: int) -> str:
    meta = next((r for r in records if r.get("type") == "meta"), None)
    decisions = [r for r in records if r.get("type") == "decision"]
    transitions = [r for r in records if r.get("type") == "transition"]
    spans = [r for r in records if r.get("type") == "span"]
    metrics = next((r for r in records if r.get("type") == "metrics"), None)
    profile = next((r for r in records if r.get("type") == "profile"), None)

    lines: list[str] = []
    header = f"=== run {index + 1}/{total}"
    if meta is not None:
        header += (
            f": {meta.get('scenario', '?')} "
            f"(seed={meta.get('seed', '?')}, jobs={meta.get('num_jobs', '?')}, "
            f"nodes={meta.get('num_nodes', '?')})"
        )
    lines.append(header + " ===")

    if spans:
        span_bits = ", ".join(
            f"{s['name']}: {s['events']} events" for s in spans
        )
        horizon = max((s["t1"] for s in spans), default=0.0)
        lines.append(f"phases: {span_bits}; horizon t={horizon:.6g}s "
                     f"({horizon / 86400.0:.2f} days)")

    if decisions:
        accepted = sum(1 for d in decisions if d["outcome"] == "accepted")
        rejected = len(decisions) - accepted
        lines.append(
            f"admission: {len(decisions)} decisions — "
            f"{accepted} accepted, {rejected} rejected"
        )
        rejects = [d for d in decisions if d["outcome"] == "rejected"]
        if rejects:
            lines.append("top rejection reasons:")
            for reason, count in _top_reasons(rejects):
                lines.append(f"  {count:6d} × {reason}")

    if transitions:
        by_kind: dict[str, int] = {}
        for t in transitions:
            by_kind[t["to"]] = by_kind.get(t["to"], 0) + 1
        bits = ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
        lines.append(f"lifecycle: {bits}")

    if metrics is not None:
        values = metrics["values"]
        keys = (
            "pct_deadlines_fulfilled", "avg_slowdown", "acceptance_pct",
            "completed_late", "utilisation",
        )
        bits = ", ".join(
            f"{k}={values[k]:.4g}" if isinstance(values.get(k), float)
            else f"{k}={values.get(k)}"
            for k in keys if k in values
        )
        lines.append(f"final metrics: {bits}")

    if profile is not None:
        lines.append(
            f"profile: {profile.get('events', 0)} events at "
            f"{profile.get('events_per_sec', 0.0):,.0f} events/s; "
            "wall times are non-deterministic"
        )
    return "\n".join(lines)
