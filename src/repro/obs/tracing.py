"""Deterministic end-to-end tracing for the admission service.

Distributed tracers mint ids from wall clocks and host randomness; both
are banned here (DET001) because a trace must be *evidence*: the same
workload replayed — or recovered from the write-ahead log after a crash
— must reconstruct byte-identical traces, or a diff between a live run
and its replay would drown in id churn.

Ids are therefore minted from three deterministic inputs only:

* a **stream seed** derived from the engine config (so two differently
  configured services never collide),
* the engine's **logical submit counter** (the DES analogue of a
  monotone clock tick),
* the **job id**.

The span tree itself is *reconstructed* from engine state rather than
collected from instrumented call sites: every lifecycle instant a span
needs (submit, decision, start, finish) is already recorded in
simulated time by the kernel/RMS, so the trace reader is a pure
function of the engine and adds zero overhead to the hot admission
path.  Per-stage latency attribution comes from the injected clock —
``admission`` measures decision latency, ``queue.wait`` the backlog
delay, ``execute`` the service time — all in simulated seconds.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from typing import TYPE_CHECKING, Any, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.job import Job
    from repro.service.engine import AdmissionEngine, Decision

#: Hex digits in a trace id (blake2b digest_size=8).
TRACE_ID_WIDTH = 16

#: Hex digits in a span id (blake2b digest_size=4).
SPAN_ID_WIDTH = 8


def canonical_json(payload: Any) -> str:
    """The repo-wide canonical encoding (same contract as WAL frames)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False,
        allow_nan=False,
    )


def seed_from_config(config: Mapping[str, Any]) -> int:
    """Derive the trace-id stream seed from an engine config mapping.

    crc32 over the canonical JSON of the config: cheap, stable across
    processes, and changes whenever any admission-relevant knob does.
    """
    return zlib.crc32(canonical_json(dict(config)).encode("utf-8")) & 0xFFFFFFFF


def mint_trace_id(seed: int, seq: int, job_id: int) -> str:
    """Mint the 16-hex-digit trace id for one submission.

    ``seq`` is the engine's logical submit counter (1 for the first
    successfully logged submit), the deterministic stand-in for the
    wall-clock component of conventional tracers.
    """
    digest = hashlib.blake2b(
        f"{seed}:{seq}:{job_id}".encode("utf-8"), digest_size=8
    )
    return digest.hexdigest()


def mint_span_id(trace_id: str, name: str) -> str:
    """Mint the 8-hex-digit span id for one named stage of a trace."""
    digest = hashlib.blake2b(
        f"{trace_id}/{name}".encode("utf-8"), digest_size=4
    )
    return digest.hexdigest()


def _span(trace_id: str, name: str, start: float,
          end: Optional[float] = None,
          attrs: Optional[dict[str, Any]] = None) -> dict[str, Any]:
    span: dict[str, Any] = {
        "span_id": mint_span_id(trace_id, name),
        "name": name,
        "start": float(start),
    }
    if end is not None:
        span["end"] = float(end)
        span["duration"] = float(end) - float(start)
    if attrs:
        span["attrs"] = dict(sorted(attrs.items()))
    return span


def build_trace(engine: "AdmissionEngine", job_id: int) -> dict[str, Any]:
    """Reconstruct the full lifecycle span tree for ``job_id``.

    Pure reader over engine state; raises ``KeyError`` when the engine
    has never decided the job (unknown id, or the arrival event has not
    fired yet).
    """
    decision: "Decision" = engine._decision_index[job_id]
    job = _find_job(engine, job_id)
    trace_id = engine.trace_ids.get(job_id)
    if trace_id is None:
        # Pre-tracing WAL segments and direct rms submissions have no
        # minted id; fall back to a seq-0 mint so the trace is still
        # deterministic and renderable.
        trace_id = mint_trace_id(engine.trace_seed, 0, job_id)

    spans: list[dict[str, Any]] = []
    submit_t = job.submit_time if job is not None else decision.t
    end_t = decision.t
    if job is not None and job.finish_time is not None:
        end_t = job.finish_time

    spans.append(_span(trace_id, "submit", submit_t, submit_t))
    wal_lsn = engine.wal_lsns.get(job_id)
    if wal_lsn is not None:
        spans.append(
            _span(trace_id, "wal.append", submit_t, submit_t,
                  {"lsn": wal_lsn})
        )
    admission_attrs: dict[str, Any] = {"outcome": decision.outcome}
    if decision.reason:
        admission_attrs["reason"] = decision.reason
    spans.append(
        _span(trace_id, "admission", submit_t, decision.t, admission_attrs)
    )
    if job is not None and job.start_time is not None:
        spans.append(_span(trace_id, "queue.wait", submit_t, job.start_time))
        exec_end = job.finish_time
        exec_attrs: dict[str, Any] = {"nodes": list(job.assigned_nodes)}
        spans.append(
            _span(trace_id, "execute", job.start_time, exec_end, exec_attrs)
        )
    if job is not None and job.finish_time is not None:
        completion_attrs: dict[str, Any] = {"state": job.state.value}
        if job.deadline_met is not None:
            completion_attrs["deadline_met"] = job.deadline_met
        if job.delay is not None:
            completion_attrs["delay"] = job.delay
        spans.append(
            _span(trace_id, "completion", end_t, end_t, completion_attrs)
        )

    root = _span(
        trace_id, "job", submit_t, end_t,
        {
            "job_id": job_id,
            "policy": decision.policy,
            "outcome": decision.outcome,
        },
    )
    return {
        "trace_id": trace_id,
        "job_id": job_id,
        "policy": decision.policy,
        "root": root,
        "spans": spans,
    }


def _find_job(engine: "AdmissionEngine", job_id: int) -> Optional["Job"]:
    for job in engine.rms.jobs:
        if job.job_id == job_id:
            return job
    return None


def render_trace(trace: Mapping[str, Any], json_out: bool = False) -> str:
    """Render a trace dict as canonical JSON or an ASCII span tree."""
    if json_out:
        return canonical_json(dict(trace))
    root = trace["root"]
    lines = [
        f"trace {trace['trace_id']} job={trace['job_id']} "
        f"policy={trace['policy']}",
        _render_span(root, prefix=""),
    ]
    spans = list(trace["spans"])
    for i, span in enumerate(spans):
        last = i == len(spans) - 1
        branch = "`-- " if last else "|-- "
        lines.append(branch + _render_span(span, prefix="  "))
    return "\n".join(lines)


def _render_span(span: Mapping[str, Any], prefix: str) -> str:
    name = span["name"]
    start = span["start"]
    if "end" in span:
        stamp = f"[{start:.6g}s .. {span['end']:.6g}s] ({span['duration']:.6g}s)"
    else:
        stamp = f"[{start:.6g}s ..]"
    parts = [f"{name} {span['span_id']} {stamp}"]
    attrs = span.get("attrs")
    if attrs:
        rendered = " ".join(f"{k}={canonical_json(v)}" for k, v in attrs.items())
        parts.append(rendered)
    return " ".join(parts)


__all__ = [
    "SPAN_ID_WIDTH",
    "TRACE_ID_WIDTH",
    "build_trace",
    "canonical_json",
    "mint_span_id",
    "mint_trace_id",
    "render_trace",
    "seed_from_config",
]
