"""Hook protocols through which the core simulation is observed.

The core packages (``sim``, ``cluster``, ``scheduling``) know nothing
about metrics or exporters — they only carry optional observer
attributes typed against the protocols below.  The obs layer implements
all three in :class:`~repro.obs.session.ObsSession`; anything else
(tests, notebooks, a future live dashboard) can implement them too.

* :class:`PolicyObserver` — every admission decision, with its reason
  (installed on :class:`~repro.scheduling.base.SchedulingPolicy`);
* :class:`LifecycleObserver` — every job lifecycle transition
  (installed on :class:`~repro.cluster.rms.ResourceManagementSystem`);
* the kernel-level observer is a plain ``Callable[[Event], None]``
  (the ``on_event`` attribute of :class:`~repro.sim.kernel.Simulator`).

All hooks are **passive**: observers must not schedule events, mutate
jobs or touch cluster state, so an instrumented run fires exactly the
same event sequence as an uninstrumented one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.job import Job


@runtime_checkable
class PolicyObserver(Protocol):
    """Receives every admission decision a policy takes."""

    def on_admission_decision(
        self,
        policy_name: str,
        job: "Job",
        accepted: bool,
        reason: str,
        now: float,
        details: dict[str, Any],
    ) -> None:
        """One job was accepted or rejected at simulated time ``now``.

        ``reason`` is the human-readable explanation (always set for
        rejections); ``details`` carries structured policy-specific
        context, e.g. LibraRisk's suitable/online node counts.
        """
        ...  # pragma: no cover


@runtime_checkable
class LifecycleObserver(Protocol):
    """Receives every RMS-visible job lifecycle transition."""

    def on_job_transition(self, job: "Job", transition: str, now: float) -> None:
        """``job`` moved to ``transition`` (``submitted``, ``accepted``,
        ``rejected``, ``completed`` or ``failed``) at time ``now``."""
        ...  # pragma: no cover
