"""Shared ``logging`` configuration for the whole package.

Every module logs under the ``repro`` namespace via :func:`get_logger`;
:func:`configure_logging` installs one stderr handler on that root with
a structured single-line format.  Nothing is configured at import time
— a library must stay silent unless its host application opts in —
so simulations emit no log output until the CLI (or a test) calls
``configure_logging``.

>>> log = get_logger("obs.session")
>>> log.name
'repro.obs.session'
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO, Union

#: The root of the package's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

#: Single-line structured format: component, level, then the message.
LOG_FORMAT = "%(name)s %(levelname)s %(message)s"

LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the shared ``repro`` namespace.

    ``get_logger("obs.session")`` → logger ``repro.obs.session``;
    the empty string returns the package root logger.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def parse_level(level: Union[int, str]) -> int:
    """Translate a CLI level name (``"info"``) to a ``logging`` constant."""
    if isinstance(level, int):
        return level
    name = level.strip().upper()
    value = getattr(logging, name, None)
    if not isinstance(value, int):
        raise ValueError(f"unknown log level {level!r}; choose from {LOG_LEVELS}")
    return value


def configure_logging(
    level: Union[int, str] = logging.WARNING,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` root logger and return it.

    Idempotent: previous handlers installed by this function are
    replaced, so repeated CLI invocations in one process (tests!) do
    not stack handlers and duplicate lines.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(parse_level(level))
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    root.addHandler(handler)
    root.propagate = False
    return root
