"""A deterministic in-process metrics registry.

Components register **counters**, **gauges** and **histograms** into a
:class:`MetricsRegistry` and update them as the simulation runs.  The
registry is designed around one non-negotiable property: *for the same
seed and scenario, the exported state is byte-identical between runs*.
That rules out wall-clock timestamps, hash-ordered iteration and
adaptive histogram buckets — metrics are kept in insertion order,
labels are sorted, and histogram bucket bounds are fixed at creation
time.

Quickstart
----------
>>> reg = MetricsRegistry()
>>> reg.counter("jobs_total", "Jobs seen", transition="completed").inc()
>>> reg.counter("jobs_total", "Jobs seen", transition="completed").inc()
>>> reg.counter("jobs_total", "Jobs seen", transition="completed").value
2
>>> h = reg.histogram("slowdown", "Job slowdown", buckets=(1.0, 10.0))
>>> h.observe(3.5)
>>> h.count, h.sum
(1, 3.5)
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional, Sequence, Union

Number = Union[int, float]

#: Default histogram bucket bounds (upper-inclusive, Prometheus style).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """Raised for registry misuse (kind clashes, bad bucket bounds)."""


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base class for one labelled time series.

    Value updates and snapshots are guarded by a per-metric reentrant
    lock: the registry is shared across the service's HTTP handler
    threads, where unsynchronized ``+=`` loses increments and a
    ``/metrics`` render can observe a half-applied histogram update.
    Single-threaded simulation runs pay only an uncontended acquire.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: dict[str, str]) -> None:
        self.name = name
        self.help = help
        self.labels = dict(sorted((str(k), str(v)) for k, v in labels.items()))
        self._lock = threading.RLock()

    def label_suffix(self) -> str:
        """Prometheus-style ``{k="v",...}`` rendering (empty when unlabelled)."""
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels.items())
        return "{" + inner + "}"

    def as_dict(self) -> dict:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: dict[str, str]) -> None:
        super().__init__(name, help, labels)
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self.value += amount

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "name": self.name, "kind": self.kind, "labels": self.labels,
                "value": self.value,
            }


class Gauge(Metric):
    """A value that can go up and down (queue depth, running jobs)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: dict[str, str]) -> None:
        super().__init__(name, help, labels)
        self.value: Number = 0

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self.value -= amount

    def max(self, value: Number) -> None:
        """Keep the running maximum of observed values."""
        with self._lock:
            if value > self.value:
                self.value = value

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "name": self.name, "kind": self.kind, "labels": self.labels,
                "value": self.value,
            }


class Histogram(Metric):
    """Distribution with **fixed** bucket bounds (upper-inclusive).

    Bounds are frozen at creation so that exports are deterministic;
    an implicit ``+Inf`` bucket catches everything above the last bound.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: dict[str, str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(f"histogram {name} needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError(f"histogram {name} bounds must be strictly increasing")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        value = float(value)
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +Inf."""
        with self._lock:
            out: list[tuple[float, int]] = []
            running = 0
            for bound, count in zip(self.bounds, self._counts):
                running += count
                out.append((bound, running))
            out.append((float("inf"), self.count))
            return out

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "name": self.name, "kind": self.kind, "labels": self.labels,
                "sum": self.sum, "count": self.count,
                "buckets": [
                    [("+Inf" if b == float("inf") else b), c]
                    for b, c in self.bucket_counts()
                ],
            }


class MetricsRegistry:
    """Get-or-create store of metrics, iterated in registration order.

    The same ``(name, labels)`` pair always returns the same metric
    object; asking for it with a different *kind* raises
    :class:`MetricError` so name collisions are caught early.

    Structural operations (get-or-create, lookup, iteration, collect)
    are serialized by a registry-level lock: service handler threads
    lazily create labelled metrics while ``GET /metrics`` iterates, and
    an unguarded dict would race (lost registrations, ``dict changed
    size during iteration``).  Iteration yields a point-in-time
    snapshot for the same reason.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Metric] = {}
        self._lock = threading.Lock()

    # -- get-or-create ------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise MetricError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if tuple(float(b) for b in buckets) != existing.bounds:
                    raise MetricError(
                        f"histogram {name!r} re-registered with different buckets"
                    )
                return existing
            metric = Histogram(name, help, labels, buckets=buckets)
            self._metrics[key] = metric
            return metric

    def _get_or_create(self, cls, name: str, help: str, labels: dict[str, str]):
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help, labels)
            self._metrics[key] = metric
            return metric

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        with self._lock:
            return iter(list(self._metrics.values()))

    def get(self, name: str, **labels: str) -> Optional[Metric]:
        """Look up an existing metric without creating it."""
        with self._lock:
            return self._metrics.get((name, _label_key(labels)))

    def collect(self) -> list[dict]:
        """Every metric as a plain dict, **sorted** by (name, labels).

        Sorting (rather than registration order) makes the export
        independent of code paths that merely changed registration
        order, which keeps the byte-identity guarantee robust.
        """
        with self._lock:
            snapshot = sorted(self._metrics.items(), key=lambda kv: kv[0])
        return [m.as_dict() for _, m in snapshot]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry metrics={len(self._metrics)}>"
