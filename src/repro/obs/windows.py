"""Constant-memory windowed telemetry over *simulated* time.

The cumulative counters of :mod:`repro.obs.metrics` answer "what
happened since the run started"; a long-running service also needs
"what is happening *now*".  This module provides the sliding-window
primitives for that second question, all bounded in memory regardless
of run length:

* :class:`WindowedCounter` — event rate over the trailing window,
  kept in a fixed ring of time buckets (O(buckets) memory);
* :class:`RingHistogram` — quantiles (p50/p90/p99/p99.9) over the last
  ``capacity`` observations (O(capacity) memory, oldest evicted first);
* :class:`PolicyWindow` / :class:`WindowAggregator` — per-policy
  windowed admission counts, loss ratio and rejection-reason series,
  with the distinct-reason set capped so a pathological workload cannot
  grow state without bound.

Determinism
-----------
Windows advance on the **simulated** clock (the ``t`` of each noted
decision), never the wall clock, so the same workload under a
``VirtualClock`` yields byte-identical :meth:`WindowAggregator.snapshot`
output across runs, replays and WAL recoveries.  Quantiles come from
the same linear-interpolated percentile the load generator reports, so
``repro top`` and loadgen summaries agree on definitions.

Concurrency
-----------
Instances are shared between service handler threads and the
``GET /metrics`` renderer; every ring-buffer mutation and snapshot
therefore happens under the instance lock (enforced by lint rule
CONC003 — see docs/STATIC_ANALYSIS.md).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Sequence

#: Default window length in simulated seconds (one hour of trace time).
DEFAULT_WINDOW = 3600.0

#: Default bucket count for windowed rate counters.
DEFAULT_BUCKETS = 60

#: Default retained-sample capacity for ring histograms.
DEFAULT_CAPACITY = 1024

#: Cap on distinct rejection reasons tracked per policy; the excess is
#: folded into :data:`OVERFLOW_REASON` so reason cardinality (a
#: workload-controlled input) cannot grow state without bound.
MAX_REASONS = 32

#: Bucket every reason beyond :data:`MAX_REASONS` lands in.
OVERFLOW_REASON = "<other>"

#: Quantiles every ring histogram reports, in readout order.
QUANTILES = ((50.0, "p50"), (90.0, "p90"), (99.0, "p99"), (99.9, "p999"))


def window_percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of sorted data."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    pos = (len(sorted_values) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class WindowedCounter:
    """Event count/rate over a trailing window of simulated time.

    The window is a fixed ring of ``buckets`` equal time slices; noting
    an event at time ``t`` zeroes any slices the clock skipped and
    increments the current one.  Reads (:meth:`total`, :meth:`rate`)
    advance the ring the same way first, so a counter that stopped
    receiving events decays to zero as the window slides past them.
    Memory is O(buckets) forever.
    """

    def __init__(self, window: float = DEFAULT_WINDOW,
                 buckets: int = DEFAULT_BUCKETS) -> None:
        if window <= 0 or not math.isfinite(window):
            raise ValueError(f"window must be a positive finite number, got {window}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.window = float(window)
        self.buckets = int(buckets)
        self._slice = self.window / self.buckets
        self._counts = [0.0] * self.buckets
        #: Index of the time slice the cursor currently sits in
        #: (floor(t / slice)); -inf until the first event arrives.
        self._cursor = -math.inf
        self._lock = threading.Lock()

    def _advance(self, t: float) -> None:  # repro-lint: locked  private helper, every caller holds self._lock
        """Zero the slices between the cursor and ``t`` (lock held)."""
        index = math.floor(t / self._slice)
        if self._cursor == -math.inf:
            self._cursor = index
            return
        if index <= self._cursor:
            return  # same slice, or a stale read behind the cursor
        steps = index - self._cursor
        if steps >= self.buckets:
            for i in range(self.buckets):
                self._counts[i] = 0.0
        else:
            for step in range(1, int(steps) + 1):
                self._counts[int((self._cursor + step) % self.buckets)] = 0.0
        self._cursor = index

    def note(self, t: float, amount: float = 1.0) -> None:
        """Record ``amount`` events at simulated time ``t``."""
        with self._lock:
            self._advance(t)
            self._counts[int(self._cursor % self.buckets)] += amount

    def total(self, t: float) -> float:
        """Events inside the window ending at simulated time ``t``."""
        with self._lock:
            self._advance(t)
            return sum(self._counts)

    def rate(self, t: float) -> float:
        """Events per simulated second over the window ending at ``t``."""
        return self.total(t) / self.window

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WindowedCounter window={self.window:g}s buckets={self.buckets}>"


class RingHistogram:
    """Quantile readout over the last ``capacity`` observations.

    A bounded deque keeps memory at O(capacity) regardless of how many
    values were ever observed; :attr:`evicted` reports how many fell out
    of the ring so a reader knows when the quantiles describe a
    truncated suffix rather than the whole run.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._values: deque[float] = deque(maxlen=self.capacity)
        self._total = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Add one observation (oldest is evicted past capacity)."""
        with self._lock:
            self._values.append(float(value))
            self._total += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    @property
    def total_observed(self) -> int:
        """Observations ever made, including evicted ones."""
        with self._lock:
            return self._total

    @property
    def evicted(self) -> int:
        """Observations no longer retained in the ring."""
        with self._lock:
            return self._total - len(self._values)

    def quantiles(self) -> dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ..., "p999": ...}`` of the ring.

        Empty histograms report 0.0 everywhere rather than raising, so
        a freshly-started service renders a dashboard instead of a
        stack trace.
        """
        with self._lock:
            ordered = sorted(self._values)
        if not ordered:
            return {key: 0.0 for _, key in QUANTILES}
        return {key: window_percentile(ordered, q) for q, key in QUANTILES}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RingHistogram retained={len(self)} capacity={self.capacity}>"


class PolicyWindow:
    """Windowed admission series for one policy.

    Tracks submissions, rejections and per-reason rejection counts over
    the trailing window, from which the windowed **loss ratio** (the
    loss-ratio-vs-load lens of the scheduling-comparison literature)
    reads directly.  Reason cardinality is capped at
    :data:`MAX_REASONS`; later reasons fold into
    :data:`OVERFLOW_REASON`.
    """

    def __init__(self, window: float = DEFAULT_WINDOW,
                 buckets: int = DEFAULT_BUCKETS) -> None:
        self.window = float(window)
        self.buckets = int(buckets)
        self.submitted = WindowedCounter(window, buckets)
        self.rejected = WindowedCounter(window, buckets)
        self._reasons: dict[str, WindowedCounter] = {}
        self._lock = threading.Lock()

    def _reason_counter(self, reason: str) -> WindowedCounter:
        with self._lock:
            counter = self._reasons.get(reason)
            if counter is None:
                if len(self._reasons) >= MAX_REASONS:
                    reason = OVERFLOW_REASON
                    counter = self._reasons.get(reason)
                if counter is None:
                    counter = WindowedCounter(self.window, self.buckets)
                    self._reasons[reason] = counter
            return counter

    def note_decision(self, t: float, outcome: str, reason: str = "") -> None:
        """Record one admission decision at simulated time ``t``."""
        self.submitted.note(t)
        if outcome == "rejected":
            self.rejected.note(t)
            self._reason_counter(reason or "<unspecified>").note(t)

    def loss_ratio(self, t: float) -> float:
        """Rejected / submitted over the window ending at ``t`` (0.0 if idle)."""
        submitted = self.submitted.total(t)
        if submitted <= 0:
            return 0.0
        return self.rejected.total(t) / submitted

    def snapshot(self, t: float) -> dict[str, Any]:
        """Deterministic JSON-able view of this policy's window at ``t``."""
        with self._lock:
            reason_names = sorted(self._reasons)
        reasons = {
            name: self._reasons[name].total(t)
            for name in reason_names
        }
        return {
            "window_s": self.window,
            "submitted": self.submitted.total(t),
            "rejected": self.rejected.total(t),
            "loss_ratio": self.loss_ratio(t),
            "reject_reasons": {k: v for k, v in reasons.items() if v > 0},
        }


class WindowAggregator:
    """The service's windowed-telemetry facade: one window per policy.

    The engine calls :meth:`note_decision` once per admission decision;
    :meth:`snapshot` renders everything as one deterministic dict for
    ``stats``/``/metrics``/``repro top``.  Memory is
    O(policies x reasons x buckets), all three factors bounded.
    """

    def __init__(self, window: float = DEFAULT_WINDOW,
                 buckets: int = DEFAULT_BUCKETS) -> None:
        if window <= 0 or not math.isfinite(window):
            raise ValueError(f"window must be a positive finite number, got {window}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.window = float(window)
        self.buckets = int(buckets)
        self._policies: dict[str, PolicyWindow] = {}
        self._lock = threading.Lock()

    def policy_window(self, policy: str) -> PolicyWindow:
        """Get-or-create the window for ``policy``."""
        with self._lock:
            win = self._policies.get(policy)
            if win is None:
                win = PolicyWindow(self.window, self.buckets)
                self._policies[policy] = win
            return win

    def note_decision(self, t: float, policy: str, outcome: str,
                      reason: str = "") -> None:
        """Record one admission decision at simulated time ``t``."""
        self.policy_window(policy).note_decision(t, outcome, reason)

    def replay(self, decisions: Sequence[Any]) -> None:
        """Rebuild window state from an engine's decision log.

        Used after checkpoint restore: decisions carry ``(t, policy,
        outcome, reason)`` in submit order, which is exactly the note
        stream the live engine produced, so a restored window is
        byte-identical to the uncrashed one.
        """
        for decision in decisions:
            self.note_decision(
                decision.t, decision.policy, decision.outcome, decision.reason
            )

    def policies(self) -> list[str]:
        with self._lock:
            return sorted(self._policies)

    def snapshot(self, t: float) -> dict[str, Any]:
        """Deterministic JSON-able view of every policy window at ``t``."""
        return {
            "t": float(t),
            "window_s": self.window,
            "policies": {
                name: self.policy_window(name).snapshot(t)
                for name in self.policies()
            },
        }

    def memory_items(self) -> int:
        """Retained state cells (for the O(window) soak assertion)."""
        with self._lock:
            policies = list(self._policies.values())
        items = 0
        for win in policies:
            with win._lock:
                reasons = len(win._reasons)
            items += (2 + reasons) * win.buckets
        return items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WindowAggregator window={self.window:g}s "
            f"policies={len(self._policies)}>"
        )


__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "DEFAULT_WINDOW",
    "MAX_REASONS",
    "OVERFLOW_REASON",
    "PolicyWindow",
    "QUANTILES",
    "RingHistogram",
    "WindowAggregator",
    "WindowedCounter",
    "window_percentile",
]
