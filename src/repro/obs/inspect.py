"""Replay and interrogate a JSON-lines metrics log (``repro inspect``).

A metrics log is self-contained: it opens with a ``meta`` record per
run and closes with the run's final ``metrics``/``registry`` (and
optional ``profile``) records, with every admission decision and
lifecycle transition in between.  This module re-reads such a log and
answers the questions the live run could have: what happened, why were
jobs rejected, what did the counters end at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.obs.exporters import (
    jsonl_line,
    prometheus_from_dump,
    read_jsonl,
    run_report,
)
from repro.obs.windows import DEFAULT_WINDOW, WindowAggregator

INSPECT_MODES = ("report", "prom", "decisions", "transitions", "cache", "windows")


@dataclass
class LogSummary:
    """Aggregate view of one metrics log (possibly many runs)."""

    runs: int = 0
    records: int = 0
    decisions: int = 0
    accepted: int = 0
    rejected: int = 0
    transitions: int = 0
    has_profile: bool = False
    #: ``reason -> count`` over every rejection in the log.
    reject_reasons: dict[str, int] = field(default_factory=dict)


def summarize(records: Sequence[dict]) -> LogSummary:
    """Single-pass aggregation of a record stream."""
    summary = LogSummary(records=len(records))
    for record in records:
        kind = record.get("type")
        if kind == "meta":
            summary.runs += 1
        elif kind == "decision":
            summary.decisions += 1
            if record.get("outcome") == "accepted":
                summary.accepted += 1
            else:
                summary.rejected += 1
                reason = record.get("reason", "<unspecified>")
                summary.reject_reasons[reason] = (
                    summary.reject_reasons.get(reason, 0) + 1
                )
        elif kind == "transition":
            summary.transitions += 1
        elif kind == "profile":
            summary.has_profile = True
    if summary.runs == 0 and summary.records:
        summary.runs = 1  # headerless fragment still describes one run
    return summary


def render_inspection(
    records: Sequence[dict],
    mode: str = "report",
    policy: Optional[str] = None,
    json_output: bool = False,
    window: float = DEFAULT_WINDOW,
) -> str:
    """Render a loaded record stream in one of :data:`INSPECT_MODES`.

    ``policy`` filters ``decisions``/``transitions`` output to the
    decisions taken by one policy.  ``json_output`` switches those two
    modes from aligned human-readable rows to canonical JSON lines
    (one record per line, sorted keys) for machine consumption —
    ``repro inspect log --mode decisions --json | jq``.  ``window``
    sizes the trailing window of the ``windows`` mode (simulated
    seconds).
    """
    if mode == "report":
        return run_report(records)
    if mode == "prom":
        dumps = [r for r in records if r.get("type") == "registry"]
        if not dumps:
            return "no registry record in log\n"
        # The last registry dump is the final state of the (last) run.
        return prometheus_from_dump(dumps[-1]["metrics"])
    if mode == "decisions":
        rows = [r for r in records if r.get("type") == "decision"]
        if policy is not None:
            rows = [r for r in rows if r.get("policy") == policy]
        if json_output:
            return "\n".join(jsonl_line(r) for r in rows)
        return "\n".join(_decision_line(r) for r in rows)
    if mode == "transitions":
        rows = [r for r in records if r.get("type") == "transition"]
        if json_output:
            return "\n".join(jsonl_line(r) for r in rows)
        return "\n".join(
            f"t={r['t']:<12.6g} job={r['job']:<6d} -> {r['to']}" for r in rows
        )
    if mode == "cache":
        return _render_cache(records, json_output=json_output)
    if mode == "windows":
        return _render_windows(
            records, policy=policy, json_output=json_output, window=window
        )
    raise ValueError(f"unknown inspect mode {mode!r}; choose from {INSPECT_MODES}")


def _render_windows(
    records: Sequence[dict],
    policy: Optional[str] = None,
    json_output: bool = False,
    window: float = DEFAULT_WINDOW,
) -> str:
    """Windowed loss-ratio/rejection-reason view over the log's decisions.

    A pure function of the decision records: the aggregator is rebuilt
    from the log, so this renders the exact windowed state a live
    service with the same window size would have reported at the last
    decision instant — without the run having been instrumented.
    """
    aggregator = WindowAggregator(window)
    last_t = 0.0
    seen = False
    for record in records:
        if record.get("type") != "decision":
            continue
        name = record.get("policy", "?")
        if policy is not None and name != policy:
            continue
        t = float(record["t"])
        outcome = "accepted" if record.get("outcome") == "accepted" else "rejected"
        aggregator.note_decision(t, name, outcome, record.get("reason", ""))
        last_t = max(last_t, t)
        seen = True
    if not seen:
        return "" if json_output else "no decision records in log"
    snap = aggregator.snapshot(last_t)
    if json_output:
        return jsonl_line(snap)
    lines = [f"window: trailing {snap['window_s']:g}s at t={snap['t']:g}s"]
    for name, pol in sorted(snap["policies"].items()):
        lines.append(
            f"{name}: submitted={pol['submitted']:.0f} "
            f"rejected={pol['rejected']:.0f} loss_ratio={pol['loss_ratio']:.4f}"
        )
        for reason, count in sorted(
            pol["reject_reasons"].items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"  {count:>8.0f}  {reason}")
    return "\n".join(lines)


def _render_cache(records: Sequence[dict], json_output: bool = False) -> str:
    """Admission fast-path counters from the log's ``profile`` records.

    Cache statistics ride in the profile record (they explain wall
    clocks, so they are kept out of the deterministic export), which
    means the log must come from a ``--profile`` run to contain any.
    """
    profiles = [r for r in records if r.get("type") == "profile"]
    blocks = [p.get("cache", {}) for p in profiles]
    if json_output:
        return "\n".join(jsonl_line(b) for b in blocks)
    if not profiles:
        return (
            "no profile record in log — admission cache counters are only\n"
            "recorded by profiled runs; re-run with --profile to capture them"
        )
    lines: list[str] = []
    for i, block in enumerate(blocks):
        prefix = f"run {i + 1}: " if len(blocks) > 1 else ""
        if not block:
            lines.append(f"{prefix}no cache counters (fast path disabled or unused)")
            continue
        for key in sorted(block):
            lines.append(f"{prefix}{key:<24s} {block[key]}")
    return "\n".join(lines)


def _decision_line(record: dict) -> str:
    base = (
        f"t={record['t']:<12.6g} job={record['job']:<6d} "
        f"{record.get('policy', '?'):<12s} {record['outcome']:<8s}"
    )
    reason = record.get("reason")
    if reason:
        base += f" {reason}"
    details = record.get("details")
    if details:
        base += f"  {jsonl_line(details)}"
    return base


def inspect_log(
    path: str,
    mode: str = "report",
    policy: Optional[str] = None,
    json_output: bool = False,
    window: float = DEFAULT_WINDOW,
) -> str:
    """Load ``path`` and render it (the ``repro inspect`` entry point)."""
    records = read_jsonl(path)
    if not records:
        return "" if json_output else f"{path}: empty log"
    return render_inspection(
        records, mode=mode, policy=policy, json_output=json_output, window=window
    )
