"""Profiling layer: where does a simulation spend its time?

A :class:`Profiler` aggregates three families of cost data:

* **phase wall times** — runner phases (build / submit / run / collect)
  timed with :func:`time.perf_counter`, from which events/sec falls out;
* **admission-test wall time** — per-policy cumulative time spent in
  ``on_job_submitted`` (via :meth:`wrap_admission`, which shadows the
  bound method on the policy *instance* — the class is untouched);
* **event-heap depth** — min/mean/max of the kernel's pending-event
  heap, sampled at every fired event.

Everything here reads wall clocks, so profile output is explicitly
**not** covered by the byte-identical-export guarantee (heap-depth
stats are deterministic, but they ship in the same block).  The whole
layer is off unless requested: with no profiler attached the hot path
pays a single ``is None`` check.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from repro.analysis.sanitizer import exempt

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.base import SchedulingPolicy


class _RunningStats:
    """Streaming min/mean/max without storing samples."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "min": self.min if self.min is not None else 0.0,
            "mean": self.mean,
            "max": self.max if self.max is not None else 0.0,
        }


class Profiler:
    """Collects wall-time and heap-depth statistics for one run."""

    def __init__(self) -> None:
        self.phase_wall: dict[str, float] = {}
        self.heap_depth = _RunningStats()
        self.admission_wall: dict[str, float] = {}   # policy name -> seconds
        self.admission_calls: dict[str, int] = {}
        self.cache_stats: dict[str, int] = {}
        self._events_at_run_start = 0
        self._events_at_run_end = 0

    # -- phases -------------------------------------------------------------
    class _Phase:
        def __init__(self, profiler: "Profiler", name: str) -> None:
            self._profiler = profiler
            self._name = name
            self._t0 = 0.0

        def __enter__(self) -> "Profiler._Phase":
            self._t0 = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            elapsed = time.perf_counter() - self._t0
            wall = self._profiler.phase_wall
            wall[self._name] = wall.get(self._name, 0.0) + elapsed

    def phase(self, name: str) -> "Profiler._Phase":
        """Context manager accumulating wall time under ``name``."""
        return Profiler._Phase(self, name)

    # -- kernel sampling ----------------------------------------------------
    def sample_heap_depth(self, depth: int) -> None:
        self.heap_depth.add(float(depth))

    def note_run_bounds(self, events_before: int, events_after: int) -> None:
        self._events_at_run_start = events_before
        self._events_at_run_end = events_after

    def note_cache_stats(self, stats: dict[str, int]) -> None:
        """Record the admission fast-path counters for the report.

        ``stats`` comes from :attr:`SchedulingPolicy.cache_stats` plus
        kernel counters (e.g. ``events_tombstoned``); counters are summed
        on repeated calls so multi-run sessions aggregate.
        """
        for key, value in stats.items():
            self.cache_stats[key] = self.cache_stats.get(key, 0) + int(value)

    # -- admission timing ---------------------------------------------------
    def wrap_admission(self, policy: "SchedulingPolicy") -> None:
        """Shadow ``policy.on_job_submitted`` with a timing wrapper.

        The wrapper lives on the instance, so the policy class and all
        other instances keep the untimed method.
        """
        name = policy.name
        original = policy.on_job_submitted
        self.admission_wall.setdefault(name, 0.0)
        self.admission_calls.setdefault(name, 0)

        def timed(job, now):
            # Sanctioned wall-clock read on the decision path: profile
            # output is explicitly outside the byte-identical guarantee,
            # so the determinism sanitizer must not trip on it.
            with exempt():
                t0 = time.perf_counter()
            try:
                original(job, now)
            finally:
                with exempt():
                    self.admission_wall[name] += time.perf_counter() - t0
                self.admission_calls[name] += 1

        policy.on_job_submitted = timed  # type: ignore[method-assign]

    # -- report -------------------------------------------------------------
    @property
    def run_events(self) -> int:
        return self._events_at_run_end - self._events_at_run_start

    @property
    def events_per_sec(self) -> float:
        run_wall = self.phase_wall.get("run", 0.0)
        return self.run_events / run_wall if run_wall > 0 else 0.0

    def as_dict(self) -> dict:
        admission = {
            name: {
                "calls": self.admission_calls.get(name, 0),
                "wall_s": self.admission_wall[name],
                "mean_us": (
                    1e6 * self.admission_wall[name] / self.admission_calls[name]
                    if self.admission_calls.get(name)
                    else 0.0
                ),
            }
            for name in sorted(self.admission_wall)
        }
        return {
            "phases_wall_s": dict(sorted(self.phase_wall.items())),
            "events": self.run_events,
            "events_per_sec": self.events_per_sec,
            "admission": admission,
            "heap_depth": self.heap_depth.as_dict(),
            "cache": dict(sorted(self.cache_stats.items())),
        }

    def render(self) -> str:
        """Human-readable profile summary (for the CLI's ``--profile``)."""
        d = self.as_dict()
        lines = ["-- profile " + "-" * 45]
        total = sum(d["phases_wall_s"].values())
        for name, secs in d["phases_wall_s"].items():
            lines.append(f"phase {name:<10s} {secs * 1e3:10.2f} ms")
        lines.append(f"phase {'total':<10s} {total * 1e3:10.2f} ms")
        lines.append(
            f"kernel: {d['events']} events, {d['events_per_sec']:,.0f} events/s"
        )
        hd = d["heap_depth"]
        lines.append(
            f"event heap depth: min={hd['min']:.0f} mean={hd['mean']:.1f} "
            f"max={hd['max']:.0f} over {hd['count']} events"
        )
        for name, a in d["admission"].items():
            lines.append(
                f"admission[{name}]: {a['calls']} calls, "
                f"{a['wall_s'] * 1e3:.2f} ms total, {a['mean_us']:.1f} µs/call"
            )
        if d["cache"]:
            pairs = "  ".join(f"{k}={v}" for k, v in d["cache"].items())
            lines.append(f"admission cache: {pairs}")
        return "\n".join(lines)
