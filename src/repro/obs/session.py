"""One observed simulation run: wiring, recording, aggregation.

:class:`ObsSession` is the concrete implementation of every hook
protocol in :mod:`repro.obs.hooks`.  :meth:`ObsSession.attach` installs
it on a ``(sim, rms, policy)`` triple; from then on it

* appends a structured **record** (a plain JSON-able dict) for every
  admission decision, job lifecycle transition and runner phase span;
* aggregates **metrics** into its :class:`~repro.obs.metrics.MetricsRegistry`
  (decision counters, transition counters, slowdown/delay histograms);
* optionally drives a :class:`~repro.obs.profiling.Profiler` when
  constructed with ``profile=True``.

Records never contain wall-clock data unless profiling is on (the
single trailing ``profile`` record), so the JSON-lines export of a run
is byte-identical across repetitions with the same seed and scenario.

For multi-run commands (figures, sweeps) a :class:`RunSink` can be
installed as a context manager; :func:`repro.experiments.runner.run_scenario`
then creates a session per run automatically and streams each run's
records to the sink's JSON-lines file::

    with RunSink(path="figure1.jsonl") as sink:
        figure1(base=cfg)           # every scenario inside is observed
    print(sink.runs, "runs captured")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import Profiler

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.job import Job
    from repro.cluster.rms import ResourceManagementSystem
    from repro.experiments.config import ScenarioConfig
    from repro.scheduling.base import SchedulingPolicy
    from repro.sim.events import Event
    from repro.sim.kernel import Simulator

#: Version stamp written into every run's meta record.
SCHEMA_VERSION = 1

#: Fixed bucket bounds for the paper-metric histograms (deterministic).
SLOWDOWN_BUCKETS = (1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0, 100.0)
DELAY_BUCKETS = (1.0, 10.0, 60.0, 600.0, 3600.0, 21600.0, 86400.0)

log = get_logger("obs.session")


class ObsSession:
    """Observer for one simulation run.

    Parameters
    ----------
    scenario:
        Optional :class:`~repro.experiments.config.ScenarioConfig`; when
        given, a ``meta`` record describing the run opens the record
        stream.
    profile:
        Collect wall-clock profiling data (and append a ``profile``
        record at finalize time).  Off by default because profile
        output is inherently non-deterministic.
    registry:
        Share an existing :class:`MetricsRegistry` (e.g. to aggregate
        several runs); a fresh one is created when omitted.
    """

    def __init__(
        self,
        scenario: Optional["ScenarioConfig"] = None,
        profile: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.profiler: Optional[Profiler] = Profiler() if profile else None
        self.records: list[dict] = []
        self.scenario = scenario
        self.finalized = False
        self._sim: Optional["Simulator"] = None
        self._policy: Optional["SchedulingPolicy"] = None
        self._events_counter = self.registry.counter(
            "sim_events_total", "Kernel events fired"
        )
        if scenario is not None:
            self.records.append(
                {
                    "type": "meta",
                    "schema": SCHEMA_VERSION,
                    "scenario": scenario.label(),
                    "policy": scenario.policy,
                    "seed": scenario.seed,
                    "num_jobs": scenario.num_jobs,
                    "num_nodes": scenario.num_nodes,
                    "estimate_mode": scenario.estimate_mode,
                }
            )

    # -- wiring -------------------------------------------------------------
    def attach(
        self,
        sim: "Simulator",
        rms: Optional["ResourceManagementSystem"] = None,
        policy: Optional["SchedulingPolicy"] = None,
    ) -> "ObsSession":
        """Install this session's hooks; returns ``self`` for chaining.

        An existing kernel ``on_event`` callback is preserved by
        chaining (ours runs first).
        """
        self._sim = sim
        previous = sim.on_event
        if previous is None:
            sim.on_event = self._on_sim_event
        else:
            def chained(event: "Event") -> None:
                self._on_sim_event(event)
                previous(event)

            sim.on_event = chained
        if rms is not None:
            rms.observer = self
        if policy is not None:
            policy.observer = self
            self._policy = policy
            if self.profiler is not None:
                self.profiler.wrap_admission(policy)
        return self

    # -- kernel hook --------------------------------------------------------
    def _on_sim_event(self, event: "Event") -> None:
        self._events_counter.inc()
        if self.profiler is not None and self._sim is not None:
            self.profiler.sample_heap_depth(self._sim.pending)

    # -- PolicyObserver -----------------------------------------------------
    def on_admission_decision(
        self,
        policy_name: str,
        job: "Job",
        accepted: bool,
        reason: str,
        now: float,
        details: dict[str, Any],
    ) -> None:
        outcome = "accepted" if accepted else "rejected"
        self.registry.counter(
            "admission_decisions_total",
            "Admission decisions by policy and outcome",
            policy=policy_name,
            outcome=outcome,
        ).inc()
        record: dict[str, Any] = {
            "type": "decision",
            "t": now,
            "job": job.job_id,
            "policy": policy_name,
            "outcome": outcome,
        }
        if reason:
            record["reason"] = reason
        if details:
            record["details"] = details
        self.records.append(record)
        if log.isEnabledFor(10):  # DEBUG
            log.debug(
                "decision t=%.6g job=%d policy=%s %s%s",
                now, job.job_id, policy_name, outcome,
                f" ({reason})" if reason else "",
            )

    # -- LifecycleObserver --------------------------------------------------
    def on_job_transition(self, job: "Job", transition: str, now: float) -> None:
        self.registry.counter(
            "jobs_total", "Job lifecycle transitions", transition=transition
        ).inc()
        running = self.registry.gauge("jobs_running", "Jobs currently running")
        if transition == "accepted":
            running.inc()
            self.registry.gauge(
                "jobs_running_peak", "Peak concurrently running jobs"
            ).max(running.value)
        elif transition in ("completed", "failed"):
            running.dec()
        if transition == "completed":
            slowdown = job.slowdown
            if slowdown is not None:
                self.registry.histogram(
                    "job_slowdown", "Response time over runtime",
                    buckets=SLOWDOWN_BUCKETS,
                ).observe(slowdown)
            delay = job.delay
            if delay:
                self.registry.histogram(
                    "job_delay_seconds", "Eq. 3 delay of late jobs",
                    buckets=DELAY_BUCKETS,
                ).observe(delay)
        self.records.append(
            {"type": "transition", "t": now, "job": job.job_id, "to": transition}
        )

    # -- phase spans ----------------------------------------------------------
    class _Span:
        def __init__(self, session: "ObsSession", name: str) -> None:
            self._session = session
            self._name = name
            self._t0 = 0.0
            self._events0 = 0
            self._profile_phase = None

        def __enter__(self) -> "ObsSession._Span":
            sim = self._session._sim
            self._t0 = sim.now if sim is not None else 0.0
            self._events0 = sim.events_fired if sim is not None else 0
            if self._session.profiler is not None:
                self._profile_phase = self._session.profiler.phase(self._name)
                self._profile_phase.__enter__()
            return self

        def __exit__(self, *exc) -> None:
            if self._profile_phase is not None:
                self._profile_phase.__exit__(*exc)
            sim = self._session._sim
            t1 = sim.now if sim is not None else 0.0
            events1 = sim.events_fired if sim is not None else 0
            if self._name == "run" and self._session.profiler is not None:
                self._session.profiler.note_run_bounds(self._events0, events1)
            self._session.records.append(
                {
                    "type": "span",
                    "name": self._name,
                    "t0": self._t0,
                    "t1": t1,
                    "events": events1 - self._events0,
                }
            )

    def span(self, name: str) -> "ObsSession._Span":
        """Record a named phase of the run (sim-time bounds + event count)."""
        return ObsSession._Span(self, name)

    # -- finalize -------------------------------------------------------------
    def finalize(
        self,
        metrics: Optional[Any] = None,
        sim: Optional["Simulator"] = None,
    ) -> list[dict]:
        """Close the record stream: final metrics, registry dump, profile.

        Idempotent; returns the full record list.
        """
        if self.finalized:
            return self.records
        self.finalized = True
        sim = sim if sim is not None else self._sim
        if sim is not None:
            self.registry.gauge(
                "sim_horizon_seconds", "Simulated clock at the end of the run"
            ).set(sim.now)
        if metrics is not None:
            as_dict = getattr(metrics, "as_dict", None)
            payload = as_dict() if callable(as_dict) else dict(metrics)
            self.records.append({"type": "metrics", "values": payload})
        self.records.append({"type": "registry", "metrics": self.registry.collect()})
        if self.profiler is not None:
            # Fast-path effectiveness counters ride in the profile record
            # (explicitly outside the byte-identity guarantee, like the
            # wall clocks they explain).
            if self._policy is not None and self._policy.cache_stats:
                self.profiler.note_cache_stats(self._policy.cache_stats)
            if sim is not None and sim.tombstones_dropped:
                self.profiler.note_cache_stats(
                    {"events_tombstoned": sim.tombstones_dropped}
                )
            self.records.append({"type": "profile", **self.profiler.as_dict()})
        log.info(
            "run finalized: %d records, %d metrics%s",
            len(self.records), len(self.registry),
            " (profiled)" if self.profiler is not None else "",
        )
        return self.records

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ObsSession records={len(self.records)} metrics={len(self.registry)} "
            f"profile={self.profiler is not None} finalized={self.finalized}>"
        )


# -- multi-run capture --------------------------------------------------------

_ACTIVE_SINK: Optional["RunSink"] = None


def active_sink() -> Optional["RunSink"]:
    """The :class:`RunSink` currently installed via ``with``, if any."""
    return _ACTIVE_SINK


class RunSink:
    """Captures every :func:`run_scenario` executed inside its ``with``.

    Installs itself as the process-wide active sink;
    ``run_scenario`` creates an :class:`ObsSession` per run and hands
    the finalized records back here.  When ``path`` is set the records
    stream straight to that JSON-lines file (runs are concatenated —
    each starts with its ``meta`` record).

    Only in-process runs are captured: sweeps with ``processes > 1``
    execute scenarios in worker processes the sink cannot see.
    """

    def __init__(self, path: Optional[str] = None, profile: bool = False) -> None:
        self.path = path
        self.profile = profile
        self.runs = 0
        self.records: list[dict] = []
        self.sessions: list[ObsSession] = []
        self._fp = None
        self._previous: Optional["RunSink"] = None

    def __enter__(self) -> "RunSink":
        global _ACTIVE_SINK
        if self.path is not None:
            self._fp = open(self.path, "w", encoding="utf-8", newline="\n")
        self._previous = _ACTIVE_SINK
        _ACTIVE_SINK = self
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE_SINK
        _ACTIVE_SINK = self._previous
        self._previous = None
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def new_session(self, scenario: Optional["ScenarioConfig"]) -> ObsSession:
        return ObsSession(scenario=scenario, profile=self.profile)

    def take(self, session: ObsSession) -> None:
        """Absorb a finalized session's records."""
        records = session.finalize()
        self.runs += 1
        self.sessions.append(session)
        self.records.extend(records)
        if self._fp is not None:
            from repro.obs.exporters import write_jsonl_records

            write_jsonl_records(self._fp, records)
            self._fp.flush()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunSink runs={self.runs} path={self.path!r}>"
