"""Design-choice ablations (beyond the paper; see DESIGN.md §3).

Quantifies each decision the paper leaves open: the σ-versus-strict
suitability rule (i.e. how much of LibraRisk's advantage is the
empty-node gamble), the zero-risk node ordering, the overrun floor
share, and spare-capacity redistribution.
"""

from benchmarks.conftest import emit
from repro.experiments.ablations import all_ablations


def test_ablations(benchmark, bench_base, results_dir, capsys):
    results = benchmark.pedantic(
        lambda: all_ablations(bench_base), rounds=1, iterations=1
    )
    text = "\n\n".join(ab.render() for ab in results.values())
    emit(capsys, results_dir, "ablations", text)

    s = results["suitability"].series("pct_deadlines_fulfilled")
    assert s["sigma (paper)"] >= s["no-delay (strict)"]
    assert s["sigma (paper)"] > s["libra (reference)"]
