"""Regenerate the workload statistics the paper reports in §4.

The paper describes its 3000-job SDSC SP2 subset: mean inter-arrival
time 2131 s (35.52 min), mean runtime ≈ 2.7 h, mean 17 processors, on
a 128-node machine, with highly over-estimated user runtime estimates.
This bench prints the same statistics for the workload the benchmarks
actually use (the calibrated synthetic trace, or a real SWF via
``trace_path``).
"""

from benchmarks.conftest import emit
from repro.experiments.reporting import render_table
from repro.experiments.runner import load_base_records
from repro.workload.traces import describe_records


def test_trace_statistics(benchmark, bench_base, results_dir, capsys):
    records = benchmark.pedantic(
        lambda: load_base_records(bench_base), rounds=1, iterations=1
    )
    stats = describe_records(records)
    text = "=== Workload statistics (paper §4) ===\n" + render_table(
        ["statistic", "value"], sorted(stats.items()), float_fmt="{:.3f}"
    )
    emit(capsys, results_dir, "trace_stats", text)

    assert stats["num_jobs"] == bench_base.num_jobs
    assert stats["estimate_frac_overestimated"] > 0.5  # "often over estimated"
    assert stats["max_procs"] <= bench_base.num_nodes
