"""Benchmarks for the online admission service (engine path, no HTTP).

Measures what a server pays per request with the transport stripped
away: raw single-job admission throughput through
:meth:`AdmissionEngine.submit`, protocol parse/validate overhead, and
checkpoint snapshot cost on a loaded engine.
"""

import json

from benchmarks.conftest import bench_scale, emit
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs
from repro.service import checkpoint, protocol
from repro.service.engine import engine_for_scenario


def _scenario(policy: str = "librarisk") -> ScenarioConfig:
    jobs, nodes, seed = bench_scale()
    return ScenarioConfig(policy=policy, num_jobs=jobs, num_nodes=nodes, seed=seed)


class TestEngineSubmitThroughput:
    def test_submit_stream_librarisk(self, benchmark, capsys, results_dir):
        config = _scenario("librarisk")

        def setup():
            # Jobs are stateful: build a fresh stream per round, untimed.
            return (build_scenario_jobs(config),), {}

        def run(jobs):
            engine = engine_for_scenario(config)
            for job in jobs:
                engine.submit(job)
            return len(engine.decisions)

        count = benchmark.pedantic(run, setup=setup, rounds=5)
        assert count == config.num_jobs
        if benchmark.stats is not None:  # absent under --benchmark-disable
            per_submit = benchmark.stats.stats.mean / count
            emit(
                capsys, results_dir, "bench_service_submit",
                f"engine submit throughput ({config.policy}, {count} jobs, "
                f"{config.num_nodes} nodes): "
                f"{1.0 / per_submit:,.0f} submits/s "
                f"({per_submit * 1e6:.1f} µs/submit, decision included)",
            )

    def test_drain_after_stream(self, benchmark):
        config = _scenario("librarisk")

        def run():
            engine = engine_for_scenario(config)
            for job in build_scenario_jobs(config):
                engine.submit(job)
            engine.drain()
            return engine.sim.pending

        assert benchmark(run) == 0


class TestProtocolOverhead:
    def test_parse_submit_request(self, benchmark):
        body = json.dumps({
            "v": protocol.PROTOCOL_VERSION, "type": "submit",
            "job": {"id": 1, "submit_time": 10.0, "runtime": 120.0,
                    "estimated_runtime": 180.0, "numproc": 4,
                    "deadline": 600.0, "urgency": "high"},
        }).encode()

        request = benchmark(protocol.parse_request, body)
        assert isinstance(request, protocol.SubmitRequest)

    def test_job_from_payload(self, benchmark):
        payload = {"submit_time": 10.0, "runtime": 120.0,
                   "estimated_runtime": 180.0, "numproc": 4, "deadline": 600.0}
        job = benchmark(protocol.job_from_payload, payload)
        assert job.numproc == 4


class TestCheckpointCost:
    def test_snapshot_loaded_engine(self, benchmark, capsys, results_dir):
        config = _scenario("librarisk")
        engine = engine_for_scenario(config)
        for job in build_scenario_jobs(config):
            engine.submit(job)

        snap = benchmark(checkpoint.snapshot, engine)
        size = len(checkpoint.dumps(snap))
        assert snap["format"] == checkpoint.CHECKPOINT_FORMAT
        if benchmark.stats is not None:  # absent under --benchmark-disable
            emit(
                capsys, results_dir, "bench_service_checkpoint",
                f"checkpoint snapshot of {len(engine.rms.jobs)}-job engine: "
                f"{benchmark.stats.stats.mean * 1e3:.2f} ms, "
                f"{size / 1024.0:.0f} KiB canonical JSON",
            )
