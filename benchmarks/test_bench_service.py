"""Benchmarks for the online admission service (engine path, no HTTP).

Measures what a server pays per request with the transport stripped
away: raw single-job admission throughput through
:meth:`AdmissionEngine.submit`, protocol parse/validate overhead,
checkpoint snapshot cost on a loaded engine, write-ahead log append
throughput, and recovery (replay) speed over a populated WAL.
"""

import itertools
import json

from benchmarks.conftest import bench_scale, emit
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs
from repro.service import checkpoint, protocol, wal as wal_mod
from repro.service.engine import engine_for_scenario
from repro.service.loadgen import job_request_payload
from repro.service.server import AdmissionService


def _scenario(policy: str = "librarisk") -> ScenarioConfig:
    jobs, nodes, seed = bench_scale()
    return ScenarioConfig(policy=policy, num_jobs=jobs, num_nodes=nodes, seed=seed)


class TestEngineSubmitThroughput:
    def test_submit_stream_librarisk(self, benchmark, capsys, results_dir):
        config = _scenario("librarisk")

        def setup():
            # Jobs are stateful: build a fresh stream per round, untimed.
            return (build_scenario_jobs(config),), {}

        def run(jobs):
            engine = engine_for_scenario(config)
            for job in jobs:
                engine.submit(job)
            return len(engine.decisions)

        count = benchmark.pedantic(run, setup=setup, rounds=5)
        assert count == config.num_jobs
        if benchmark.stats is not None:  # absent under --benchmark-disable
            per_submit = benchmark.stats.stats.mean / count
            emit(
                capsys, results_dir, "bench_service_submit",
                f"engine submit throughput ({config.policy}, {count} jobs, "
                f"{config.num_nodes} nodes): "
                f"{1.0 / per_submit:,.0f} submits/s "
                f"({per_submit * 1e6:.1f} µs/submit, decision included)",
            )

    def test_drain_after_stream(self, benchmark):
        config = _scenario("librarisk")

        def run():
            engine = engine_for_scenario(config)
            for job in build_scenario_jobs(config):
                engine.submit(job)
            engine.drain()
            return engine.sim.pending

        assert benchmark(run) == 0


class TestProtocolOverhead:
    def test_parse_submit_request(self, benchmark):
        body = json.dumps({
            "v": protocol.PROTOCOL_VERSION, "type": "submit",
            "job": {"id": 1, "submit_time": 10.0, "runtime": 120.0,
                    "estimated_runtime": 180.0, "numproc": 4,
                    "deadline": 600.0, "urgency": "high"},
        }).encode()

        request = benchmark(protocol.parse_request, body)
        assert isinstance(request, protocol.SubmitRequest)

    def test_job_from_payload(self, benchmark):
        payload = {"submit_time": 10.0, "runtime": 120.0,
                   "estimated_runtime": 180.0, "numproc": 4, "deadline": 600.0}
        job = benchmark(protocol.job_from_payload, payload)
        assert job.numproc == 4


class TestCheckpointCost:
    def test_snapshot_loaded_engine(self, benchmark, capsys, results_dir):
        config = _scenario("librarisk")
        engine = engine_for_scenario(config)
        for job in build_scenario_jobs(config):
            engine.submit(job)

        snap = benchmark(checkpoint.snapshot, engine)
        size = len(checkpoint.dumps(snap))
        assert snap["format"] == checkpoint.CHECKPOINT_FORMAT
        if benchmark.stats is not None:  # absent under --benchmark-disable
            emit(
                capsys, results_dir, "bench_service_checkpoint",
                f"checkpoint snapshot of {len(engine.rms.jobs)}-job engine: "
                f"{benchmark.stats.stats.mean * 1e3:.2f} ms, "
                f"{size / 1024.0:.0f} KiB canonical JSON",
            )


class TestWalCost:
    """What durability costs: append throughput and recovery speed."""

    def _submit_payloads(self, config: ScenarioConfig) -> list:
        return [
            {"v": protocol.PROTOCOL_VERSION, "type": "submit",
             "job": job_request_payload(job)}
            for job in build_scenario_jobs(config)
        ]

    def test_wal_append_throughput(self, benchmark, capsys, results_dir, tmp_path):
        # fsync="batch" is the realistic throughput mode; "always" just
        # measures the disk's fsync latency, which CI runners randomise.
        config = _scenario("librarisk")
        payloads = self._submit_payloads(config)
        header = engine_for_scenario(config).config.as_dict()
        fresh = itertools.count()

        def setup():
            path = tmp_path / f"append-{next(fresh)}.wal"
            return (wal_mod.WriteAheadLog.open(
                str(path), config=header, fsync="batch"),), {}

        def run(log):
            for t, payload in enumerate(payloads):
                log.append(float(t), payload)
            log.close()
            return log.appended

        count = benchmark.pedantic(run, setup=setup, rounds=5)
        assert count == len(payloads)
        if benchmark.stats is not None:  # absent under --benchmark-disable
            per_append = benchmark.stats.stats.mean / count
            emit(
                capsys, results_dir, "bench_service_wal_append",
                f"WAL append throughput (fsync=batch, {count} records): "
                f"{1.0 / per_append:,.0f} appends/s "
                f"({per_append * 1e6:.1f} µs/append, checksum + flush included)",
            )

    def test_wal_recovery_speed(self, benchmark, capsys, results_dir, tmp_path):
        # Populate a WAL through the real service path once (untimed),
        # then time rebuilding an engine from it — the cost of a restart.
        config = _scenario("librarisk")
        engine = engine_for_scenario(config)
        path = str(tmp_path / "recovery.wal")
        log = wal_mod.WriteAheadLog.open(
            path, config=engine.config.as_dict(), fsync="none")
        service = AdmissionService(engine, wal=log)
        for payload in self._submit_payloads(config):
            status, _ = service.handle(json.dumps(payload).encode())
            assert status == 200
        log.close()

        def run():
            _, report = wal_mod.recover(path)
            return report

        report = benchmark(run)
        assert report.replayed == config.num_jobs
        if benchmark.stats is not None:  # absent under --benchmark-disable
            per_record = benchmark.stats.stats.mean / report.replayed
            emit(
                capsys, results_dir, "bench_service_wal_recovery",
                f"WAL recovery ({report.replayed} records, no checkpoint): "
                f"{benchmark.stats.stats.mean * 1e3:.1f} ms total, "
                f"{1.0 / per_record:,.0f} records/s replayed",
            )
