"""Failure-robustness grid (beyond the paper).

Sweeps node MTBF for each admission control: how gracefully does each
degrade when the cluster itself breaks its promises?
"""

from benchmarks.conftest import emit
from repro.experiments.robustness import robustness_grid


def test_robustness_grid(benchmark, bench_base, results_dir, capsys):
    grid = benchmark.pedantic(
        lambda: robustness_grid(bench_base, mtbfs=(None, 200.0, 50.0)),
        rounds=1, iterations=1,
    )
    emit(capsys, results_dir, "robustness", grid.render())

    for policy in ("edf", "libra", "librarisk"):
        clean = grid.cell(policy, None).metrics.pct_deadlines_fulfilled
        faulty = grid.cell(policy, 50.0).metrics.pct_deadlines_fulfilled
        assert faulty <= clean
    # The headline advantage survives an unreliable cluster.
    assert (
        grid.cell("librarisk", 50.0).metrics.pct_deadlines_fulfilled
        > grid.cell("libra", 50.0).metrics.pct_deadlines_fulfilled
    )
