"""Microbenchmarks of the simulation substrate itself.

These are genuine performance benchmarks (many rounds) covering the
hot paths: the event kernel, proportional-share node recomputation,
risk assessment, and a whole end-to-end scenario per policy.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import TimeSharedNode
from repro.experiments.runner import build_scenario_jobs, run_scenario
from repro.scheduling.risk import assess_delays
from repro.sim.kernel import Simulator
from tests.conftest import make_job


class TestKernelThroughput:
    def test_schedule_and_run_10k_events(self, benchmark):
        def run():
            sim = Simulator()
            for i in range(10_000):
                sim.schedule_at(float(i % 997), lambda ev: None)
            sim.run()
            return sim.events_fired

        assert benchmark(run) == 10_000


class TestNodeOperations:
    def test_recompute_with_16_tasks(self, benchmark):
        sim = Simulator()
        node = TimeSharedNode(0, 1.0, sim)
        for i in range(16):
            job = make_job(runtime=100.0 + i, deadline=10_000.0, job_id=i + 1)
            node.add_task(job, work=100.0 + i, est_work=100.0 + i, now=0.0)
        benchmark(node.recompute, 0.0)

    def test_predicted_delays_fast_path(self, benchmark):
        sim = Simulator()
        node = TimeSharedNode(0, 1.0, sim)
        for i in range(16):
            job = make_job(runtime=100.0, deadline=10_000.0, job_id=i + 1)
            node.add_task(job, work=100.0, est_work=100.0, now=0.0)
        new = make_job(runtime=10.0, deadline=1_000.0, job_id=99)
        result = benchmark(node.predicted_delays, 0.0, [(new, 10.0)])
        assert len(result) == 17

    def test_predicted_delays_projection_path(self, benchmark):
        sim = Simulator()
        node = TimeSharedNode(0, 1.0, sim)
        # Over-committed node: every call takes the forward projection.
        for i in range(16):
            job = make_job(runtime=1_000.0, deadline=10_000.0 + i, job_id=i + 1)
            node.add_task(job, work=1_000.0, est_work=1_000.0, now=0.0)
        result = benchmark(node.predicted_delays, 0.0)
        assert len(result) == 16


class TestRiskAssessment:
    def test_assess_64_jobs(self, benchmark):
        pairs = [(float(i % 7) * 10.0, 100.0 + i) for i in range(64)]
        result = benchmark(assess_delays, pairs)
        assert result.n_jobs == 64


@pytest.mark.parametrize(
    "policy",
    ["edf", "fcfs", "edf-easy", "conservative", "qops-slack", "libra", "librarisk"],
)
class TestEndToEndScenario:
    def test_scenario_400_jobs(self, benchmark, policy, bench_base):
        config = bench_base.replace(policy=policy, num_jobs=400, estimate_mode="trace")
        jobs_template = build_scenario_jobs(config)
        assert len(jobs_template) == 400

        def run():
            return run_scenario(config)

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result.metrics.total_submitted == 400
