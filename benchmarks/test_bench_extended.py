"""Extended all-policy comparison (beyond the paper's three).

Answers whether LibraRisk's advantage survives stronger space-shared
baselines (EASY/conservative backfilling, QoPS-style slack admission).
"""

from benchmarks.conftest import emit
from repro.experiments.extended import extended_comparison


def test_extended_comparison(benchmark, bench_base, results_dir, capsys):
    comparison = benchmark.pedantic(
        lambda: extended_comparison(bench_base), rounds=1, iterations=1
    )
    emit(capsys, results_dir, "extended", comparison.render())

    # LibraRisk must still win the trace-estimate column outright.
    assert comparison.winner("trace") == "librarisk"
    # And the space-shared planners must not beat Libra's proportional
    # share under accurate estimates by construction of the workload.
    accurate = comparison.accurate
    assert (
        accurate["librarisk"].metrics.pct_deadlines_fulfilled
        >= accurate["fcfs"].metrics.pct_deadlines_fulfilled
    )
