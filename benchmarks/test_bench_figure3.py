"""Regenerate paper Figure 3 and report its series.

Panels: (a)/(b) % deadlines fulfilled, (c)/(d) average slowdown.
The benchmark times one full regeneration; the printed tables are the
rows the paper plots.
"""

from benchmarks.conftest import emit
from repro.experiments.figures import figure3
from repro.experiments.serialize import save_figure


def test_figure3(benchmark, bench_base, results_dir, capsys, processes):
    fig = benchmark.pedantic(
        lambda: figure3(base=bench_base, processes=processes), rounds=1, iterations=1
    )
    emit(capsys, results_dir, "figure3", fig.render())
    save_figure(fig, results_dir / "figure3.json")
    assert len(fig.panels) == 4
    for panel in fig.panels:
        for series in panel.series.values():
            assert len(series) == len(panel.x_values)
