"""Shared configuration for the benchmark/figure-regeneration harness.

Scale knobs (environment variables):

* ``REPRO_BENCH_JOBS``  — jobs per scenario (default 800; the paper
  uses 3000 — set ``REPRO_BENCH_JOBS=3000`` for paper scale);
* ``REPRO_BENCH_NODES`` — cluster size (default 128, as in the paper);
* ``REPRO_BENCH_SEED``  — root seed (default 42);
* ``REPRO_BENCH_PROCESSES`` — worker processes for figure sweeps
  (default: CPU count − 1; set 1 for sequential).

Each figure benchmark regenerates one paper figure, times the
regeneration, prints the same rows the paper plots, and writes them to
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ScenarioConfig

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> tuple[int, int, int]:
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "800"))
    nodes = int(os.environ.get("REPRO_BENCH_NODES", "128"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "42"))
    return jobs, nodes, seed


def bench_processes() -> int:
    from repro.experiments.parallel import default_processes

    return int(os.environ.get("REPRO_BENCH_PROCESSES", str(default_processes())))


@pytest.fixture(scope="session")
def processes() -> int:
    return bench_processes()


@pytest.fixture(scope="session")
def bench_base() -> ScenarioConfig:
    jobs, nodes, seed = bench_scale()
    return ScenarioConfig(num_jobs=jobs, num_nodes=nodes, seed=seed)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(capsys, results_dir: Path, name: str, text: str) -> None:
    """Print paper rows to the live terminal and persist them."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    with capsys.disabled():
        print()
        print(text)
