#!/usr/bin/env python3
"""Stress-testing the headline result against stronger baselines.

The paper compares LibraRisk against EDF and Libra only.  A fair
question: would a *better space-shared scheduler* — EASY backfilling,
conservative backfilling with reservation-based admission, or a
QoPS-style soft-deadline planner — close the gap without any risk
metric?  This example runs the full roster on one workload, prints the
comparison, charts the urgency sweep, and reports the tail risk
(Computation-at-Risk) of each policy's slowdown distribution.

Usage::

    python examples/extended_baselines.py [num_jobs]
"""

import sys

from repro.analysis.asciichart import ascii_chart
from repro.cluster.cluster import Cluster
from repro.cluster.rms import ResourceManagementSystem
from repro.experiments.config import ScenarioConfig
from repro.experiments.extended import extended_comparison
from repro.experiments.reporting import render_table
from repro.experiments.runner import build_scenario_jobs
from repro.experiments.sweeps import sweep
from repro.metrics.car import computation_at_risk
from repro.scheduling.registry import make_policy, policy_discipline
from repro.sim.kernel import Simulator


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    base = ScenarioConfig(num_jobs=num_jobs, num_nodes=128, seed=42)

    # 1. The all-policy table under both estimate modes.
    comparison = extended_comparison(base)
    print(comparison.render())
    print(f"\ntrace-estimate winner: {comparison.winner('trace')}")

    # 2. Urgency sweep, trace estimates, charted.
    def set_urgency(cfg, pct):
        return cfg.replace(high_urgency_fraction=pct / 100.0)

    xs = [0.0, 25.0, 50.0, 75.0, 100.0]
    urgency = sweep(
        base.replace(estimate_mode="trace"),
        "urgency_pct", xs,
        ["edf-easy", "conservative", "librarisk"],
        transform=set_urgency,
    )
    print("\n% deadlines fulfilled vs % high-urgency jobs (trace estimates):\n")
    print(ascii_chart(xs, urgency.series("pct_deadlines_fulfilled"),
                      x_label="% high urgency"))

    # 3. Computation-at-Risk of the slowdown distribution (trace mode).
    rows = []
    for name in ("edf", "edf-easy", "conservative", "libra", "librarisk"):
        jobs = build_scenario_jobs(base.replace(estimate_mode="trace"))
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, base.num_nodes,
                                      discipline=policy_discipline(name))
        rms = ResourceManagementSystem(sim, cluster, make_policy(name))
        rms.submit_all(jobs)
        sim.run()
        report = computation_at_risk(rms.jobs, measure="expansion_factor",
                                     confidence=0.95)
        rows.append([name, report.mean, report.car, report.conditional_car,
                     report.tail_ratio])
    print("\nComputation-at-Risk of slowdown (95% quantile, trace estimates):")
    print(render_table(["policy", "mean", "CaR95", "CCaR95", "tail ratio"], rows))
    print(
        "\nProportional share stretches every job toward its deadline "
        "(higher mean slowdown), but LibraRisk's tail is no heavier than "
        "Libra's — the extra accepted jobs do not come at the price of a "
        "worse worst case."
    )


if __name__ == "__main__":
    main()
