#!/usr/bin/env python3
"""Working with SWF trace files end-to-end.

The paper drives its simulation from the SDSC SP2 trace of the
Parallel Workloads Archive.  This example shows the full file
workflow so a real archive trace drops straight in:

1. generate a calibrated synthetic trace and *write it as an SWF file*
   (stands in for downloading SDSC-SP2-1998-4.2-cln.swf);
2. parse the file back, take the last-N tail subset and print the
   §4-style statistics;
3. run a scenario directly from the file via ``trace_path``.

With a real archive file on disk, skip step 1 and pass its path.

Usage::

    python examples/trace_workflow.py [path/to/trace.swf]
"""

import sys
import tempfile
from pathlib import Path

from repro.experiments.config import ScenarioConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import run_scenario
from repro.sim.rng import RngStreams
from repro.workload.swf import SWFHeader, read_swf_file, write_swf_file
from repro.workload.synthetic import SDSCSP2Model, generate_sdsc_like_records
from repro.workload.traces import describe_records, tail_subset


def make_synthetic_swf(path: Path) -> None:
    records = generate_sdsc_like_records(SDSCSP2Model(num_jobs=1500), RngStreams(seed=7))
    header = SWFHeader(
        version="2.2",
        computer="IBM SP2 (synthetic look-alike)",
        installation="repro calibrated generator",
        max_nodes=128,
        max_procs=128,
        note="statistics calibrated to the SDSC SP2 subset of Yeo & Buyya 2006",
    )
    count = write_swf_file(path, records, header=header)
    print(f"wrote {count} jobs to {path}")


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        tmp = None
    else:
        tmp = tempfile.TemporaryDirectory()
        path = Path(tmp.name) / "synthetic-sdsc-sp2.swf"
        make_synthetic_swf(path)

    header, records = read_swf_file(path)
    print(f"\nheader: computer={header.computer!r} max_nodes={header.max_nodes}")

    subset = tail_subset(records, 1000)
    stats = describe_records(subset)
    print("\n=== last-1000-job subset statistics ===")
    print(render_table(["statistic", "value"], sorted(stats.items()), float_fmt="{:.3f}"))

    config = ScenarioConfig(
        policy="librarisk",
        trace_path=str(path),
        num_jobs=1000,
        num_nodes=header.max_nodes or 128,
        estimate_mode="trace",
    )
    result = run_scenario(config)
    m = result.metrics
    print("\n=== LibraRisk on this trace ===")
    print(f"deadlines fulfilled: {m.pct_deadlines_fulfilled:.2f}%")
    print(f"average slowdown:    {m.avg_slowdown:.2f}")
    print(f"accepted:            {m.acceptance_pct:.2f}%")

    if tmp is not None:
        tmp.cleanup()


if __name__ == "__main__":
    main()
