#!/usr/bin/env python3
"""Driving the online admission engine in-process.

The batch harness answers "what would LibraRisk have done over this
trace"; the :class:`~repro.service.AdmissionEngine` answers the
production question one job at a time.  This example builds the
paper's synthetic SDSC-SP2-like workload, feeds 50 jobs to an engine
exactly as a stream of RPC clients would, prints each decision as it
is made, and closes with the engine's live stats and final paper
metrics.

Usage::

    python examples/online_service.py [policy]

with ``policy`` one of ``edf``, ``libra``, ``librarisk`` (default).
"""

import sys

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs
from repro.service import engine_for_scenario

NUM_JOBS = 50


def main() -> int:
    policy = sys.argv[1] if len(sys.argv) > 1 else "librarisk"
    config = ScenarioConfig(
        policy=policy, num_jobs=NUM_JOBS, num_nodes=32, seed=42,
    )
    jobs = build_scenario_jobs(config)
    engine = engine_for_scenario(config)

    print(f"submitting {len(jobs)} jobs to a {len(engine.cluster)}-node "
          f"{engine.policy.name} engine, one at a time\n")
    for job in jobs:
        decision = engine.submit(job)
        mark = {"accepted": "+", "queued": "~", "rejected": "-"}[decision.outcome]
        line = (f" {mark} t={decision.t:>10.1f}s job {decision.job_id:>3d} "
                f"({job.numproc} proc, est {job.estimated_runtime:,.0f}s, "
                f"deadline {job.deadline:,.0f}s) -> {decision.outcome}")
        if decision.reason:
            line += f": {decision.reason}"
        print(line)

    print("\nlive stats before drain:")
    for key, value in sorted(engine.stats().items()):
        print(f"  {key:<18} {value}")

    horizon = engine.drain()
    metrics = engine.metrics()
    print(f"\ndrained at t={horizon:,.0f}s "
          f"({horizon / 86400.0:.1f} simulated days)")
    print(f"deadlines fulfilled: {metrics.pct_deadlines_fulfilled:.1f}% | "
          f"accepted: {metrics.acceptance_pct:.1f}% | "
          f"mean slowdown: {metrics.avg_slowdown:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
