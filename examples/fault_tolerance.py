#!/usr/bin/env python3
"""Crash, recover, retry: the admission service's durability story.

The service promises that an acked admission decision survives
``kill -9``: every mutating request is appended to a checksummed
write-ahead log *before* it is applied, and the deterministic engine
replays the log into byte-identical state.  This example tells that
story in-process:

1. serve jobs through an :class:`AdmissionService` backed by a WAL,
   with a scripted :class:`CrashPoint` armed at ``wal.after_append``
   (the request is on disk but the process dies before applying it);
2. "crash", then rebuild the engine with :func:`repro.service.wal.recover`;
3. retry the in-flight job — the answer comes from the decision log
   (``duplicate: true``), so nothing is ever double-admitted;
4. finish the stream and check the final metrics are identical to an
   uninterrupted run of the same jobs.

Usage::

    python examples/fault_tolerance.py [policy]

with ``policy`` one of ``edf``, ``libra``, ``librarisk`` (default).
"""

import json
import os
import sys
import tempfile

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs
from repro.service import protocol, wal as wal_mod
from repro.service.engine import engine_for_scenario
from repro.service.faults import CrashPoint, FaultInjector, FaultSpec
from repro.service.loadgen import job_request_payload
from repro.service.server import AdmissionService

NUM_JOBS = 40
CRASH_AT = 12  # die on the 12th WAL append


def submit_body(job) -> bytes:
    return json.dumps({
        "v": protocol.PROTOCOL_VERSION, "type": "submit",
        "job": job_request_payload(job),
    }).encode()


def main() -> int:
    policy = sys.argv[1] if len(sys.argv) > 1 else "librarisk"
    config = ScenarioConfig(
        policy=policy, num_jobs=NUM_JOBS, num_nodes=16, seed=7,
    )
    jobs = build_scenario_jobs(config)

    # The uninterrupted run every recovery must reproduce exactly.
    reference = engine_for_scenario(config)
    for job in jobs:
        reference.submit(job)
    reference.drain()
    baseline = reference.metrics().as_dict()

    workdir = tempfile.mkdtemp(prefix="fault-tolerance-")
    wal_path = os.path.join(workdir, "admission.wal")

    # -- 1. serve with a WAL and a scripted crash ---------------------------
    engine = engine_for_scenario(config)
    wal = wal_mod.WriteAheadLog.open(wal_path, config=engine.config.as_dict())
    faults = FaultInjector(FaultSpec(crash_point="wal.after_append",
                                     crash_at=CRASH_AT))
    service = AdmissionService(engine, wal=wal, faults=faults)

    print(f"serving {len(jobs)} jobs through {policy} with a WAL at "
          f"{wal_path}\ncrash armed: wal.after_append hit {CRASH_AT} "
          f"(logged on disk, dies before applying)\n")
    crashed_at = None
    for index, job in enumerate(jobs):
        try:
            status, response = service.handle(submit_body(job))
        except CrashPoint as exc:
            crashed_at = index
            print(f" * CRASH at {exc} while handling job {job.job_id} "
                  f"(request durably logged, never applied, never acked)")
            break
        print(f"   job {job.job_id:>3d} -> {response['decision']['outcome']}")
    assert crashed_at is not None, "crash point never fired"

    # -- 2. recover from whatever the dead process left on disk ------------
    engine, report = wal_mod.recover(wal_path)
    print(f"\nrecovery: {report}")
    print(f"engine resumes at t={engine.now:.1f}s with wal_lsn={engine.wal_lsn}")

    # -- 3. retry the in-flight job against the recovered service ----------
    wal = wal_mod.WriteAheadLog.open(wal_path, config=engine.config.as_dict())
    service = AdmissionService(engine, wal=wal)
    status, response = service.handle(submit_body(jobs[crashed_at]))
    assert status == 200
    print(f"\nretry of in-flight job {jobs[crashed_at].job_id}: "
          f"{response['decision']['outcome']}"
          + (" (duplicate: answered from the decision log, not re-decided)"
             if response.get("duplicate") else " (decided fresh)"))

    # -- 4. finish the stream and compare with the uninterrupted run -------
    for job in jobs[crashed_at + 1:]:
        status, _ = service.handle(submit_body(job))
        assert status == 200
    status, drained = service.handle(
        json.dumps({"v": protocol.PROTOCOL_VERSION, "type": "drain"}).encode()
    )
    assert status == 200
    wal.close()

    identical = drained["metrics"] == baseline
    print(f"\nfinal metrics identical to uninterrupted run: {identical}")
    print(f"deadlines fulfilled: {drained['metrics']['pct_deadlines_fulfilled']:.1f}% | "
          f"accepted: {drained['metrics']['acceptance_pct']:.1f}%")
    if not identical:
        for key in sorted(set(baseline) | set(drained["metrics"])):
            got, want = drained["metrics"].get(key), baseline.get(key)
            if got != want:
                print(f"  {key}: recovered={got!r} baseline={want!r}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
