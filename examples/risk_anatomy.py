#!/usr/bin/env python3
"""Anatomy of the risk metric: why Libra over-admits and LibraRisk doesn't.

Builds a single time-shared node by hand and walks through the exact
situation the paper's §3 is about:

* a job *under*-estimates its runtime, exhausts its estimate and keeps
  running on the overrun floor share — invisible to Libra's Eq. 2
  capacity test but flagged by LibraRisk's deadline-delay risk σ;
* a job with an *over*-inflated estimate claims infeasibility — Libra
  rejects it, LibraRisk gambles on an empty node and wins.

No experiment harness here: raw node/metric API only, so every number
can be followed by hand.
"""

from repro.cluster.job import Job
from repro.cluster.node import TimeSharedNode
from repro.cluster.share import ShareParams
from repro.scheduling.risk import assess_delays
from repro.sim.kernel import Simulator


def show(node: TimeSharedNode, now: float, extra=()) -> None:
    total = node.total_admission_share(now, extra=[(e[1], e[0].remaining_deadline(now))
                                                   for e in extra])
    predicted = node.predicted_delays(now, extra=list(extra))
    assessment = assess_delays(
        [(d, j.remaining_deadline(now)) for j, d in predicted]
    )
    print(f"  t={now:6.0f}s  Eq.2 total share = {total:6.3f}   "
          f"sigma = {assessment.sigma:8.3f}   zero-risk = {assessment.zero_risk}")
    for j, d in predicted:
        print(f"      job {j.job_id}: predicted delay {d:8.1f}s "
              f"(remaining deadline {j.remaining_deadline(now):8.1f}s)")


def overrun_story() -> None:
    print("--- Story 1: the invisible overrunner -------------------------")
    sim = Simulator()
    node = TimeSharedNode(0, rating=1.0, sim=sim,
                          share_params=ShareParams(overrun_floor_share=0.25))

    # The user claimed 600 s; the job actually needs 4000 s.  Share by
    # Eq. 1: 600/1200 = 0.5, so the estimate is exhausted at t = 1200.
    liar = Job(runtime=4000.0, estimated_runtime=600.0, numproc=1,
               deadline=1200.0, submit_time=0.0, job_id=1)
    node.add_task(liar, work=4000.0, est_work=600.0, now=0.0)

    print("at admission the node looks perfectly healthy:")
    show(node, 0.0)

    sim.run(until=2000.0)
    node.sync(2000.0)
    print("\nafter the estimate ran out (t=2000) Libra's Eq. 2 sees *zero*")
    print("load, but the job is still burning the floor share and is late:")
    show(node, 2000.0)

    newcomer = Job(runtime=900.0, estimated_runtime=900.0, numproc=1,
                   deadline=1000.0, submit_time=2000.0, job_id=2)
    print("\nevaluating a newcomer needing share 0.9 on this node:")
    show(node, 2000.0, extra=[(newcomer, 900.0)])
    print("  -> Libra would accept (total <= 1) and the newcomer would be")
    print("     squeezed by the floor; LibraRisk sees sigma > 0 and refuses.")


def gamble_story() -> None:
    print("\n--- Story 2: the profitable gamble -----------------------------")
    sim = Simulator()
    node = TimeSharedNode(0, rating=1.0, sim=sim)

    # The user claimed 5000 s for a job that actually runs 800 s; the
    # deadline (2x the real runtime) makes the *estimate* infeasible.
    padded = Job(runtime=800.0, estimated_runtime=5000.0, numproc=1,
                 deadline=1600.0, submit_time=0.0, job_id=3)

    print("empty node, new job whose estimate claims 5000s against a 1600s")
    print("deadline (Eq. 1 share would be 3.1 -> Libra rejects):")
    show(node, 0.0, extra=[(padded, 5000.0)])
    print("  -> one job, one deadline-delay value, sigma = 0: LibraRisk")
    print("     accepts and gives it the whole node.")

    node.add_task(padded, work=800.0, est_work=5000.0, now=0.0)
    sim.run()
    met = "met" if sim.now <= padded.absolute_deadline else "missed"
    print(f"  the job actually finished at t={sim.now:.0f}s and {met} its "
          f"deadline of {padded.absolute_deadline:.0f}s — the gamble paid off.")


if __name__ == "__main__":
    overrun_story()
    gamble_story()
