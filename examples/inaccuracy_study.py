#!/usr/bin/env python3
"""Figure-4-style study: how estimate inaccuracy erodes each policy.

Sweeps the percentage of inaccuracy from 0 % (estimates equal
runtimes) to 100 % (the trace's actual user estimates) and reports,
besides the raw series, the analysis the paper's §5.5 narrates:
per-point improvement of LibraRisk over Libra, the trend of each
series, and any crossover points.

Usage::

    python examples/inaccuracy_study.py [num_jobs]
"""

import sys

from repro.analysis.compare import crossover_points, improvement_pct, trend
from repro.experiments.config import ScenarioConfig
from repro.experiments.reporting import series_table
from repro.experiments.sweeps import sweep


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    pcts = [0.0, 20.0, 40.0, 60.0, 80.0, 100.0]
    base = ScenarioConfig(
        num_jobs=num_jobs, num_nodes=128, estimate_mode="inaccuracy", seed=42
    )

    result = sweep(base, "inaccuracy_pct", pcts, ["edf", "libra", "librarisk"])
    fulfilled = result.series("pct_deadlines_fulfilled")
    slowdown = result.series("avg_slowdown")

    print("=== % of jobs with deadlines fulfilled ===")
    print(series_table("% inaccuracy", pcts, fulfilled))
    print("\n=== average slowdown (fulfilled jobs) ===")
    print(series_table("% inaccuracy", pcts, slowdown))

    gains = improvement_pct(fulfilled["librarisk"], fulfilled["libra"])
    print("\nLibraRisk improvement over Libra (deadlines fulfilled):")
    for pct, gain in zip(pcts, gains):
        print(f"  at {pct:5.1f}% inaccuracy: {gain:+6.1f}%")

    print("\nSeries trends as inaccuracy grows:")
    for name, series in fulfilled.items():
        print(f"  {name:10s}: {trend(series, tolerance=1.0)}")

    crossings = crossover_points(pcts, fulfilled["librarisk"], fulfilled["edf"])
    if crossings:
        print(f"\nLibraRisk/EDF crossover near {crossings[0]:.0f}% inaccuracy")
    else:
        winner = "librarisk" if fulfilled["librarisk"][-1] >= fulfilled["edf"][-1] else "edf"
        print(f"\nNo LibraRisk/EDF crossover in range; {winner} dominates")


if __name__ == "__main__":
    main()
