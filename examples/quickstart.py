#!/usr/bin/env python3
"""Quickstart: compare EDF, Libra and LibraRisk on one workload.

Runs the paper's base scenario (scaled down for speed) twice — once
with perfectly accurate runtime estimates and once with realistic
(mostly over-estimated) user estimates — and prints the two headline
metrics for each admission control.

Usage::

    python examples/quickstart.py [num_jobs]
"""

import sys

from repro.experiments.config import ScenarioConfig
from repro.experiments.reporting import metrics_table
from repro.experiments.runner import run_policies


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 800

    base = ScenarioConfig(num_jobs=num_jobs, num_nodes=128, seed=42)
    policies = ["edf", "libra", "librarisk"]

    for mode, title in (
        ("accurate", "Accurate runtime estimates (the idealised case)"),
        ("trace", "Actual user estimates (inaccurate, mostly over-estimated)"),
    ):
        results = run_policies(base.replace(estimate_mode=mode), policies)
        print(f"\n=== {title} ===")
        print(
            metrics_table(
                results,
                (
                    "pct_deadlines_fulfilled",
                    "avg_slowdown",
                    "acceptance_pct",
                    "completed_late",
                ),
            )
        )

    print(
        "\nWhat to look for (the paper's §5.1 summary):\n"
        " * accurate estimates: Libra and LibraRisk coincide and beat EDF;\n"
        " * trace estimates: everyone drops, Libra barely beats EDF, and\n"
        "   LibraRisk fulfils many more deadlines with a lower slowdown —\n"
        "   that margin is the value of managing the risk of inaccurate\n"
        "   runtime estimates."
    )


if __name__ == "__main__":
    main()
