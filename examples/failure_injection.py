#!/usr/bin/env python3
"""Failure injection: admission control on an unreliable cluster.

The paper's simulation assumes nodes never die.  This example injects
exponential node failure/repair cycles and watches what each admission
control's deadline guarantee is worth when the machine itself breaks
it — including the time-series view of how much of the cluster was
actually alive.

Usage::

    python examples/failure_injection.py [num_jobs]
"""

import sys

from repro.experiments.config import ScenarioConfig
from repro.experiments.robustness import robustness_grid
from repro.cluster.cluster import Cluster
from repro.cluster.failures import NodeFailureInjector
from repro.cluster.rms import ResourceManagementSystem
from repro.experiments.runner import build_scenario_jobs
from repro.metrics.timeseries import SimulationMonitor
from repro.scheduling.registry import make_policy
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams


def grid_section(base: ScenarioConfig) -> None:
    print("=== Deadline fulfilment vs node MTBF (trace estimates) ===\n")
    grid = robustness_grid(base, mtbfs=(None, 200.0, 50.0, 10.0))
    print(grid.render())


def timeline_section(base: ScenarioConfig) -> None:
    config = base.replace(policy="librarisk", estimate_mode="trace")
    jobs = build_scenario_jobs(config)
    sim = Simulator()
    cluster = Cluster.homogeneous(sim, config.num_nodes, discipline="time_shared")
    policy = make_policy("librarisk")
    rms = ResourceManagementSystem(sim, cluster, policy)
    rms.submit_all(jobs)
    injector = NodeFailureInjector(
        sim, cluster, policy, RngStreams(seed=7),
        mtbf=50.0 * 3600.0, repair_time=2.0 * 3600.0,
        horizon=max(j.submit_time for j in jobs),
    )
    injector.start()
    monitor = SimulationMonitor(sim, cluster, rms, period=6 * 3600.0)
    monitor.start()
    sim.run()

    print("\n=== LibraRisk on a failing cluster (MTBF 50h, repair 2h) ===")
    print(f"node failures injected: {injector.failures_injected}, "
          f"repairs: {injector.repairs_done}")
    print(f"jobs killed by failures: {len(rms.failed)} of {len(rms.accepted)} accepted")
    print("\nbusy nodes over time (sampled every 6 simulated hours):")
    busy = monitor["busy_nodes"]
    days = {}
    for t, v in zip(busy.times, busy.values):
        days.setdefault(int(t // 86_400), []).append(v)
    for day in sorted(days)[:14]:
        mean = sum(days[day]) / len(days[day])
        print(f"  day {day:2d}: {'#' * int(mean):s} ({mean:.1f})")


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    base = ScenarioConfig(num_jobs=num_jobs, num_nodes=64, seed=42,
                          estimate_mode="trace")
    grid_section(base)
    timeline_section(base)
    print(
        "\nFailures cost every policy roughly its share of killed jobs; the\n"
        "risk-management advantage is orthogonal and survives intact."
    )


if __name__ == "__main__":
    main()
