#!/usr/bin/env python3
"""Plugging a custom admission control into the harness.

Implements *Libra-Margin*: Libra's Eq. 2 capacity test with a safety
margin — a node is suitable only if the total share (including the new
job) stays below ``1 − margin``.  Holding back headroom is the naive
way to hedge against estimate error; LibraRisk is the principled one.
The example registers the policy, runs the paper's trace-estimate
scenario, and shows where the naive hedge lands.

Usage::

    python examples/custom_policy.py [num_jobs]
"""

import sys

from repro.cluster.job import Job
from repro.cluster.node import TimeSharedNode
from repro.experiments.config import ScenarioConfig
from repro.experiments.reporting import metrics_table
from repro.experiments.runner import run_policies
from repro.scheduling.libra import CAPACITY_EPSILON, LibraPolicy
from repro.scheduling.registry import register_policy


class LibraMarginPolicy(LibraPolicy):
    """Libra with reserved headroom on every node.

    ``margin`` is the share fraction kept free: with ``margin=0.2`` a
    node accepts new work only up to a total share of 0.8.
    """

    name = "libra-margin"
    discipline = "time_shared"

    def __init__(self, margin: float = 0.2) -> None:
        super().__init__()
        if not 0.0 <= margin < 1.0:
            raise ValueError(f"margin must be in [0, 1), got {margin}")
        self.margin = margin

    def on_job_submitted(self, job: Job, now: float) -> None:
        assert self.cluster is not None and self.rms is not None
        capacity = 1.0 - self.margin
        suitable: list[tuple[float, TimeSharedNode]] = []
        for node in self.cluster:
            assert isinstance(node, TimeSharedNode)
            node.sync(now)
            est_time = self.cluster.est_time_on(node, job.estimated_runtime)
            total = node.total_admission_share(
                now, extra=[(est_time, job.remaining_deadline(now))]
            )
            if total <= capacity + CAPACITY_EPSILON:
                suitable.append((total, node))
        if len(suitable) < job.numproc:
            self._reject(job, "margin capacity exceeded")
            return
        suitable.sort(key=lambda pair: (-pair[0], pair[1].node_id))
        self._allocate(job, [node for _, node in suitable[: job.numproc]], now)


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    register_policy(LibraMarginPolicy)

    base = ScenarioConfig(num_jobs=num_jobs, num_nodes=128, estimate_mode="trace", seed=42)
    results = run_policies(
        base,
        [
            "libra",
            ("libra-margin", {"margin": 0.1}),
            ("libra-margin", {"margin": 0.3}),
            "librarisk",
        ],
    )
    print("=== Trace estimates: naive headroom vs. risk management ===")
    print(
        metrics_table(
            results,
            ("pct_deadlines_fulfilled", "avg_slowdown", "acceptance_pct", "completed_late"),
        )
    )
    print(
        "\nReserving headroom trades acceptance for safety wholesale;\n"
        "LibraRisk reallocates exactly the jobs whose risk is real, which\n"
        "is why it dominates every fixed margin."
    )


if __name__ == "__main__":
    main()
