#!/usr/bin/env python3
"""The computational-economy view: budgets, revenue, and risk.

Restores the economic substrate of the original Libra (Sherwani et
al. 2004) that the ICPP'06 paper abstracts away, and asks the
provider-side question the related work ([5] Irwin et al., [12]
Popovici & Wilkes) poses: *which admission control earns the most,
once violated SLAs cost you money?*

Each job gets a price (resource term + urgency term) and a budget
(willingness to pay).  Revenue accrues for accepted jobs that meet
their deadline; accepted jobs that miss it incur a penalty.

Usage::

    python examples/economy.py [num_jobs]
"""

import sys

from repro.cluster.cluster import Cluster
from repro.cluster.rms import ResourceManagementSystem
from repro.economy import BudgetModel, LibraBudgetPolicy, LibraPricing, economic_summary
from repro.experiments.config import ScenarioConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import build_scenario_jobs
from repro.scheduling.registry import make_policy
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams


def run_policy(name, config, budgets, pricing):
    """Run one policy; budget enforcement only for libra-budget."""
    jobs = build_scenario_jobs(config)
    sim = Simulator()
    cluster = Cluster.homogeneous(sim, config.num_nodes, discipline="time_shared")
    if name == "libra-budget":
        policy = LibraBudgetPolicy(pricing=pricing)
        policy.set_budgets(budgets)
    else:
        policy = make_policy(name)
    rms = ResourceManagementSystem(sim, cluster, policy)
    rms.submit_all(jobs)
    sim.run()
    quoted = {j.job_id: pricing.price_job(j) for j in rms.accepted}
    summary = economic_summary(rms.jobs, quoted, penalty_rate=0.5)
    fulfilled = sum(1 for j in rms.jobs if j.deadline_met)
    return {
        "policy": name,
        "fulfilled_pct": 100.0 * fulfilled / len(rms.jobs),
        "accepted_pct": 100.0 * len(rms.accepted) / len(rms.jobs),
        "revenue_k": summary.revenue / 1e3,
        "penalties_k": summary.penalties / 1e3,
        "profit_k": summary.profit / 1e3,
    }


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    config = ScenarioConfig(num_jobs=num_jobs, num_nodes=128,
                            estimate_mode="trace", seed=42)
    pricing = LibraPricing(alpha=1.0, beta=2000.0)
    budgets = BudgetModel(pricing=pricing).assign(
        build_scenario_jobs(config), RngStreams(seed=42).get("budgets")
    )

    rows = []
    for name in ("libra", "libra-budget", "librarisk"):
        r = run_policy(name, config, budgets, pricing)
        rows.append([r["policy"], r["fulfilled_pct"], r["accepted_pct"],
                     r["revenue_k"], r["penalties_k"], r["profit_k"]])

    print("=== Trace estimates: provider economics (currency in thousands) ===")
    print(render_table(
        ["policy", "fulfilled %", "accepted %", "revenue", "penalties", "profit"],
        rows,
    ))
    print(
        "\nLibraRisk's extra fulfilled deadlines translate directly into\n"
        "revenue; budget enforcement (libra-budget) shields users who\n"
        "cannot pay but does nothing about the estimate risk itself."
    )


if __name__ == "__main__":
    main()
