"""Shim for legacy editable installs (environments without the `wheel`
package cannot use PEP 660); all metadata lives in pyproject.toml."""
from setuptools import setup

setup()
